"""Property tests: both index structures always agree with the oracle.

A stateful rule machine drives IndexedSkipList and IndexedAVL through
arbitrary interleavings of every operation, comparing each result with
the trivially correct ReferenceIndex and re-validating structural
invariants (spans, AVL balance, aggregates) after every step.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.datastructures import IndexedAVL, IndexedSkipList, ReferenceIndex

WIDTHS = st.integers(min_value=1, max_value=8)


class IndexAgreement(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ref = ReferenceIndex()
        self.structs = [
            IndexedSkipList(rng=random.Random(12345)),
            IndexedAVL(),
        ]
        self.counter = 0

    # -- mutations ----------------------------------------------------

    @rule(data=st.data(), width=WIDTHS)
    def insert(self, data, width):
        rank = data.draw(st.integers(0, len(self.ref)), label="rank")
        value = self.counter
        self.counter += 1
        self.ref.insert(rank, value, width)
        for s in self.structs:
            s.insert(rank, value, width)

    @rule(data=st.data(), count=st.integers(1, 5), width=WIDTHS)
    def extend(self, data, count, width):
        items = []
        for _ in range(count):
            items.append((self.counter, width))
            self.counter += 1
        self.ref.extend(items)
        for s in self.structs:
            s.extend(items)

    @precondition(lambda self: len(self.ref) > 0)
    @rule(data=st.data())
    def delete(self, data):
        rank = data.draw(st.integers(0, len(self.ref) - 1), label="rank")
        want = self.ref.delete(rank)
        for s in self.structs:
            assert s.delete(rank) == want

    @precondition(lambda self: len(self.ref) > 0)
    @rule(data=st.data(), width=WIDTHS)
    def replace(self, data, width):
        rank = data.draw(st.integers(0, len(self.ref) - 1), label="rank")
        value = -self.counter
        self.counter += 1
        self.ref.replace(rank, value, width)
        for s in self.structs:
            s.replace(rank, value, width)

    @rule(data=st.data(), count=st.integers(0, 5), width=WIDTHS)
    def splice(self, data, count, width):
        ra = data.draw(st.integers(0, len(self.ref)), label="ra")
        rb = data.draw(st.integers(ra, len(self.ref)), label="rb")
        items = []
        for _ in range(count):
            items.append((self.counter, width))
            self.counter += 1
        want = self.ref.splice(ra, rb, items)
        for s in self.structs:
            assert s.splice(ra, rb, items) == want

    # -- queries ---------------------------------------------------------

    @rule(data=st.data())
    def get_range(self, data):
        ra = data.draw(st.integers(0, len(self.ref)), label="ra")
        rb = data.draw(st.integers(ra, len(self.ref)), label="rb")
        want = self.ref.get_range(ra, rb)
        for s in self.structs:
            assert list(s.get_range(ra, rb)) == want

    @precondition(lambda self: self.ref.total_chars > 0)
    @rule(data=st.data())
    def find_char(self, data):
        index = data.draw(
            st.integers(0, self.ref.total_chars - 1), label="char"
        )
        want = self.ref.find_char(index)
        for s in self.structs:
            assert s.find_char(index) == want

    @precondition(lambda self: len(self.ref) > 0)
    @rule(data=st.data())
    def get_and_start(self, data):
        rank = data.draw(st.integers(0, len(self.ref) - 1), label="rank")
        for s in self.structs:
            assert s.get(rank) == self.ref.get(rank)
            assert s.char_start(rank) == self.ref.char_start(rank)

    # -- invariants --------------------------------------------------------

    @invariant()
    def sizes_agree(self):
        for s in self.structs:
            assert len(s) == len(self.ref)
            assert s.total_chars == self.ref.total_chars

    @invariant()
    def structures_valid(self):
        for s in self.structs:
            s.checkrep()

    @invariant()
    def full_walk_agrees(self):
        want = list(self.ref.items())
        for s in self.structs:
            assert list(s.items()) == want


TestIndexAgreement = IndexAgreement.TestCase
TestIndexAgreement.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
