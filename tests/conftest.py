"""Shared fixtures: deterministic randomness and ready-made documents."""

from __future__ import annotations

import random

import pytest

from repro.core.keys import KeyMaterial
from repro.crypto.random import DeterministicRandomSource


@pytest.fixture
def nonce_rng():
    """Deterministic nonce source (fresh per test)."""
    return DeterministicRandomSource(0xA5A5)


@pytest.fixture
def keys(nonce_rng):
    """Key material derived from a fixed password and salt."""
    return KeyMaterial.from_password("correct horse", rng=nonce_rng)


@pytest.fixture
def py_rng():
    """Seeded stdlib Random for structure/workload choices."""
    return random.Random(0xBEEF)
