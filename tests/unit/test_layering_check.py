"""The layering lint has teeth (tools/layering_check.py).

The real tree must pass it, and — more importantly — it must actually
fire on each class of violation it claims to catch, so a future
refactor cannot quietly reintroduce the client → server shortcuts this
repo just removed.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parents[2]
         / "tools" / "layering_check.py")


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location("layering_check", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_the_real_tree_is_clean(lint):
    assert lint.main() == 0


def test_client_importing_a_server_module_is_flagged(lint):
    problems = lint.check_source(
        "repro.client.sneaky",
        "from repro.services.gdocs.server import GDocsServer\n",
    )
    assert len(problems) == 2  # banned module AND bound server name
    assert "server internals" in problems[0]


def test_client_importing_the_registry_is_flagged(lint):
    problems = lint.check_source(
        "repro.client.sneaky",
        "from repro.services.registry import make_server\n",
    )
    assert problems and "registry" in problems[0]


def test_extension_may_use_the_registry_but_not_servers(lint):
    assert lint.check_source(
        "repro.extension.stacks",
        "from repro.services.registry import make_server\n",
    ) == []
    assert lint.check_source(
        "repro.extension.sneaky",
        "import repro.services.replicated\n",
    )


def test_service_importing_the_trusted_layer_is_flagged(lint):
    problems = lint.check_source(
        "repro.services.evil",
        "from repro.extension.passwords import PasswordVault\n",
    )
    assert problems and "untrusted" in problems[0]


def test_protocol_surface_is_allowed(lint):
    assert lint.check_source(
        "repro.client.fine",
        "from repro.services.backend import GDOCS\n"
        "from repro.services.gdocs import protocol\n"
        "from repro.services.bespin import put_request\n",
    ) == []


# -- the PR-7 transport rules --------------------------------------------


def test_net_importing_the_trusted_layer_is_flagged(lint):
    for banned in ("repro.client.resilient", "repro.extension.session",
                   "repro.crypto.aes"):
        problems = lint.check_source(
            "repro.net.sneaky", f"import {banned}\n",
        )
        assert problems and "trust boundary" in problems[0], banned


def test_net_may_use_services_and_encoding(lint):
    assert lint.check_source(
        "repro.net.server",
        "from repro.services import registry\n"
        "from repro.encoding.formenc import encode_form\n"
        "from repro.obs import counter\n",
    ) == []


def test_trusted_importing_the_socket_server_is_flagged(lint):
    for module in ("repro.client.sneaky", "repro.extension.sneaky"):
        problems = lint.check_source(
            module, "from repro.net.server import ReproServer\n",
        )
        assert problems and "Transport seam" in problems[0], module


def test_client_importing_the_pool_is_flagged(lint):
    problems = lint.check_source(
        "repro.client.sneaky",
        "from repro.net.pool import ConnectionPool\n",
    )
    assert problems and "raw connections" in problems[0]
    # the extension layer may wire transports up (sessions do)
    assert lint.check_source(
        "repro.extension.stacks",
        "from repro.net.transport import InProcessTransport\n",
    ) == []


# -- the PR-8 OT merge-engine rules --------------------------------------


def test_ot_importing_crypto_is_flagged(lint):
    for banned in ("repro.crypto", "repro.crypto.aes"):
        problems = lint.check_source(
            "repro.services.ot", f"import {banned}\n",
        )
        assert problems and "key material" in problems[0], banned


def test_ot_importing_the_trusted_layer_is_flagged(lint):
    # covered by the general services rule — pin it for repro.services.ot
    for banned in ("repro.client.resilient", "repro.extension.session"):
        problems = lint.check_source(
            "repro.services.ot", f"import {banned}\n",
        )
        assert problems and "untrusted" in problems[0], banned


def test_ot_may_use_core_delta_algebra_and_obs(lint):
    assert lint.check_source(
        "repro.services.ot",
        "from repro.core.delta import Delta\n"
        "from repro.core.ot import compose, transform\n"
        "from repro.obs import counter, histogram\n",
    ) == []


# -- the PR-10 workspace/catalog/audit rules ------------------------------


def test_catalog_importing_the_trusted_layer_is_flagged(lint):
    # the general services rule covers the catalog op — pin it
    for banned in ("repro.client.workspace", "repro.extension.catalog"):
        problems = lint.check_source(
            "repro.services.catalog", f"import {banned}\n",
        )
        assert problems and "untrusted" in problems[0], banned


def test_catalog_importing_crypto_is_flagged(lint):
    for banned in ("repro.crypto", "repro.crypto.random"):
        problems = lint.check_source(
            "repro.services.catalog", f"import {banned}\n",
        )
        assert problems and "key material" in problems[0], banned


def test_auditchain_importing_services_is_flagged(lint):
    for banned in ("repro.services", "repro.services.catalog"):
        problems = lint.check_source(
            "repro.core.auditchain", f"import {banned}\n",
        )
        assert problems and "verifier" in problems[0], banned


def test_trusted_binding_catalog_server_names_is_flagged(lint):
    for name in ("CatalogService", "CatalogStore"):
        problems = lint.check_source(
            "repro.client.sneaky",
            f"from repro.services.catalog import {name}\n",
        )
        assert problems and name in problems[0], name


def test_trusted_may_use_catalog_wire_builders(lint):
    assert lint.check_source(
        "repro.client.workspace",
        "from repro.services.catalog import (\n"
        "    catalog_chain_request,\n"
        "    catalog_list_request,\n"
        "    catalog_lookup_request,\n"
        ")\n",
    ) == []
    assert lint.check_source(
        "repro.extension.gdocs_ext",
        "from repro.services.catalog import A_AUDIT_LINK, F_INDEX\n",
    ) == []
