"""rECB codec: block-level correctness and its (intended) lack of
integrity."""

import pytest

from repro.core.recb import RecbCodec
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import Record
from repro.errors import CiphertextFormatError, DecryptionError

KEY = bytes(range(16))


@pytest.fixture
def codec():
    return RecbCodec(KEY, DeterministicRandomSource(7))


class TestPrefix:
    def test_round_trip_r0(self, codec):
        state = codec.fresh_state()
        prefix = codec.prefix(state)
        assert len(prefix) == 1
        assert prefix[0].char_count == 0
        recovered = codec.parse_prefix(prefix[0])
        assert recovered.r0 == state.r0

    def test_wrong_key_detected(self, codec):
        state = codec.fresh_state()
        prefix = codec.prefix(state)
        other = RecbCodec(bytes(16), DeterministicRandomSource(8))
        with pytest.raises(DecryptionError):
            other.parse_prefix(prefix[0])

    def test_no_suffix(self, codec):
        assert codec.suffix(codec.fresh_state()) == []


class TestDataRecords:
    def test_round_trip(self, codec):
        state = codec.fresh_state()
        chunks = ["hello", "worldly!", "é中", ""]
        records = codec.encrypt_chunks(state, chunks)
        assert [r.char_count for r in records] == [5, 8, 2, 0]
        assert [codec.decrypt_record(state, r) for r in records] == chunks

    def test_batched_decrypt_matches(self, codec):
        state = codec.fresh_state()
        chunks = [f"c{i}" for i in range(40)]
        records = codec.encrypt_chunks(state, chunks)
        assert codec.decrypt_records(state, records) == chunks

    def test_randomization(self, codec):
        """Identical chunks encrypt to distinct records (nonces)."""
        state = codec.fresh_state()
        records = codec.encrypt_chunks(state, ["same"] * 10)
        assert len({r.block for r in records}) == 10

    def test_empty_chunk_list(self, codec):
        assert codec.encrypt_chunks(codec.fresh_state(), []) == []

    def test_char_count_mismatch_detected(self, codec):
        state = codec.fresh_state()
        [record] = codec.encrypt_chunks(state, ["abc"])
        lying = Record(char_count=5, block=record.block)
        with pytest.raises(CiphertextFormatError):
            codec.decrypt_record(state, lying)

    def test_random_access_independence(self, codec):
        """Any single record decrypts without the others — the 2-record
        access pattern of SV-B."""
        state = codec.fresh_state()
        records = codec.encrypt_chunks(state, ["aa", "bb", "cc"])
        assert codec.decrypt_record(state, records[1]) == "bb"


class TestMalleability:
    def test_no_integrity_flag(self, codec):
        assert codec.supports_integrity is False

    def test_replication_goes_unnoticed(self, codec):
        """The attack rECB cannot withstand (SVI-A): duplicated records
        decrypt cleanly."""
        state = codec.fresh_state()
        records = codec.encrypt_chunks(state, ["attack", "at dawn"])
        doctored = [records[0], records[0], records[1]]
        assert codec.decrypt_records(state, doctored) == [
            "attack", "attack", "at dawn",
        ]
