"""RpcDocument: Enc/Dec/IncE with integrity — chain maintenance under
every edit shape."""

import pytest

from repro.core import Delta, load_document
from repro.core.document import RpcDocument
from repro.errors import IntegrityError


@pytest.fixture
def doc(keys, nonce_rng):
    return RpcDocument.create(
        "Pack my box with five dozen liquor jugs.",
        key_material=keys, block_chars=8, rng=nonce_rng,
    )


class TestEncDec:
    def test_round_trip(self, doc, keys):
        reloaded = RpcDocument.load(doc.wire(), key_material=keys)
        assert reloaded.text == doc.text

    @pytest.mark.parametrize("b", [1, 3, 8])
    def test_block_sizes(self, keys, nonce_rng, b):
        text = "integrity at any block size"
        doc = RpcDocument.create(text, key_material=keys, block_chars=b,
                                 rng=nonce_rng)
        assert RpcDocument.load(doc.wire(), key_material=keys).text == text

    def test_empty_document(self, keys, nonce_rng):
        doc = RpcDocument.create("", key_material=keys, rng=nonce_rng)
        assert RpcDocument.load(doc.wire(), key_material=keys).text == ""

    def test_supports_integrity(self, doc):
        assert doc.supports_integrity
        doc.verify()  # honest mirror verifies


class TestIncEChainMaintenance:
    """After every IncE the wire must still verify end-to-end AND match
    what the server gets by applying the cdelta."""

    def _check(self, doc, keys, server, cdelta):
        server = cdelta.apply(server)
        assert server == doc.wire()
        reloaded = RpcDocument.load(server, key_material=keys)
        assert reloaded.text == doc.text
        doc.verify()
        return server

    def test_insert_at_front(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.insert(0, "FRONT "))

    def test_insert_at_back(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.insert(doc.char_length, " END"))

    def test_insert_mid_block(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.insert(13, "***"))

    def test_delete_first_block(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.delete(0, 8))

    def test_delete_last_block(self, doc, keys):
        server = doc.wire()
        n = doc.char_length
        self._check(doc, keys, server, doc.delete(n - 8, 8))

    def test_delete_spanning_blocks(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.delete(5, 17))

    def test_replace(self, doc, keys):
        server = doc.wire()
        self._check(doc, keys, server, doc.replace(9, 3, "crate"))

    def test_delete_everything_rewrites(self, doc, keys):
        server = doc.wire()
        cdelta = doc.delete(0, doc.char_length)
        server = self._check(doc, keys, server, cdelta)
        assert doc.text == ""
        # and the document is usable again afterwards
        self._check(doc, keys, server, doc.insert(0, "fresh start"))

    def test_empty_to_nonempty_rewrites(self, keys, nonce_rng):
        doc = RpcDocument.create("", key_material=keys, rng=nonce_rng)
        server = doc.wire()
        cdelta = doc.insert(0, "hello")
        server = cdelta.apply(server)
        assert server == doc.wire()
        assert RpcDocument.load(server, key_material=keys).text == "hello"

    def test_long_edit_session(self, doc, keys, py_rng):
        server = doc.wire()
        plain = doc.text
        for step in range(40):
            n = len(plain)
            roll = py_rng.random()
            if roll < 0.5 or n < 10:
                pos = py_rng.randint(0, n)
                delta = Delta.insertion(pos, f"[{step}]")
            elif roll < 0.8:
                pos = py_rng.randrange(n - 5)
                delta = Delta.deletion(pos, py_rng.randint(1, 5))
            else:
                pos = py_rng.randrange(n - 5)
                delta = Delta.replacement(pos, 3, "###")
            plain = delta.apply(plain)
            server = doc.apply_delta(delta).apply(server)
            assert doc.text == plain
        assert server == doc.wire()
        assert RpcDocument.load(server, key_material=keys).text == plain

    def test_checksum_updates_every_edit(self, doc):
        """The suffix record changes on each update (length amendment)."""
        suffix_before = doc.wire()[-28:]
        doc.insert(0, "x")
        assert doc.wire()[-28:] != suffix_before


class TestTamperDetectionViaLoad:
    def test_bitflip_detected(self, doc, keys):
        from repro.security.attacks import flip_record_byte
        tampered = flip_record_byte(doc.wire(), rank=2)
        with pytest.raises(Exception):  # Integrity or format error
            load_document(tampered, key_material=keys)

    def test_record_replication_detected(self, doc, keys):
        from repro.security.attacks import replicate_record
        with pytest.raises(IntegrityError):
            load_document(replicate_record(doc.wire(), 2),
                          key_material=keys)

    def test_record_removal_detected(self, doc, keys):
        from repro.security.attacks import remove_record
        with pytest.raises(IntegrityError):
            load_document(remove_record(doc.wire(), 3), key_material=keys)

    def test_reorder_detected(self, doc, keys):
        from repro.security.attacks import swap_records
        with pytest.raises(IntegrityError):
            load_document(swap_records(doc.wire(), 1, 2),
                          key_material=keys)
