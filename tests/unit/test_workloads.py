"""Workload generators: text, documents, edit scripts, traces."""

import random

import pytest

from repro.workloads import (
    CATEGORIES,
    EditingTrace,
    document_of_length,
    edit_stream,
    large_document,
    make_text,
    make_trace,
    micro_pairs,
    random_sentence,
    sentence_delete,
    sentence_insert,
    sentence_replace,
    small_document,
    split_sentences,
    typing_burst,
)


class TestText:
    def test_exact_length(self):
        for n in (0, 1, 57, 500, 4000):
            assert len(make_text(n, random.Random(1))) == n

    def test_deterministic(self):
        assert make_text(300, random.Random(5)) == make_text(300, random.Random(5))

    def test_sentences_have_structure(self):
        sentence = random_sentence(random.Random(2))
        assert sentence[0].isupper() and sentence.endswith(".")

    def test_split_sentences_covers_text(self):
        text = make_text(400, random.Random(3))
        spans = split_sentences(text)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(text)
        for (_, end1), (start2, _) in zip(spans, spans[1:]):
            assert end1 == start2

    def test_split_handles_no_period(self):
        assert split_sentences("no periods here") == [(0, 15)]

    def test_split_empty(self):
        assert split_sentences("") == []


class TestDocuments:
    def test_standard_sizes(self):
        assert len(small_document()) == 500
        assert len(large_document()) == 10_000
        assert len(document_of_length(1234)) == 1234

    def test_micro_pairs_ranges(self):
        pairs = list(micro_pairs(20, seed=4))
        assert len(pairs) == 20
        for pair in pairs:
            assert 100 <= len(pair.before) <= 10_000
            assert 100 <= len(pair.after) <= 10_000

    def test_related_pairs_are_similar(self):
        [pair] = list(micro_pairs(1, seed=5, related=True,
                                  min_chars=500, max_chars=500))
        # a handful of local edits: lengths stay in the same ballpark
        assert abs(len(pair.after) - len(pair.before)) < 250

    def test_deterministic(self):
        a = list(micro_pairs(3, seed=9))
        b = list(micro_pairs(3, seed=9))
        assert a == b


class TestEditScripts:
    @pytest.fixture
    def doc(self):
        return small_document(7)

    def test_sentence_insert_applies(self, doc):
        delta = sentence_insert(doc, random.Random(1))
        out = delta.apply(doc)
        assert len(out) > len(doc)

    def test_sentence_delete_applies(self, doc):
        delta = sentence_delete(doc, random.Random(2))
        assert len(delta.apply(doc)) < len(doc)

    def test_sentence_replace_applies(self, doc):
        delta = sentence_replace(doc, random.Random(3))
        out = delta.apply(doc)
        assert out != doc

    def test_typing_burst(self, doc):
        delta = typing_burst(doc, random.Random(4))
        assert len(delta.apply(doc)) > len(doc)

    @pytest.mark.parametrize("category", CATEGORIES)
    def test_edit_stream_stays_valid(self, doc, category):
        current = doc
        for delta in edit_stream(doc, category, random.Random(5), 12):
            current = delta.apply(current)  # raises if invalid

    def test_inserts_only_monotone(self, doc):
        current = doc
        for delta in edit_stream(doc, "inserts only", random.Random(6), 8):
            new = delta.apply(current)
            assert len(new) > len(current)
            current = new

    def test_deletes_only_monotone(self, doc):
        current = doc
        for delta in edit_stream(doc, "deletes only", random.Random(7), 8):
            new = delta.apply(current)
            assert len(new) <= len(current) or not current
            current = new

    def test_unknown_category(self, doc):
        with pytest.raises(ValueError):
            list(edit_stream(doc, "explosions only", random.Random(8), 1))


class TestTraces:
    def test_trace_replays(self):
        trace = make_trace(small_document(1), seed=2, duration=30)
        assert isinstance(trace, EditingTrace)
        assert trace.final_text() != trace.initial_text

    def test_times_monotone(self):
        trace = make_trace(small_document(1), seed=3, duration=45)
        times = [e.at for e in trace.events]
        assert times == sorted(times)
        assert all(0 < t <= 45 for t in times)

    def test_deltas_between_windows_partition_events(self):
        trace = make_trace(small_document(2), seed=4, duration=60)
        step = 10.0
        collected = []
        for start in range(0, 60, 10):
            collected.extend(trace.deltas_between(start, start + step))
        assert len(collected) == len(trace.events)

    def test_deterministic(self):
        a = make_trace(small_document(3), seed=5)
        b = make_trace(small_document(3), seed=5)
        assert a == b
