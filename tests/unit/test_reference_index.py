"""ReferenceIndex: the oracle itself deserves a sanity pass."""

import pytest

from repro.datastructures.reference import ReferenceIndex


class TestReferenceIndex:
    def test_full_surface(self):
        ref = ReferenceIndex()
        ref.insert(0, "a", 2)
        ref.insert(1, "b", 3)
        ref.insert(1, "c", 1)
        assert list(ref.values()) == ["a", "c", "b"]
        assert ref.total_chars == 6
        assert ref.find_char(0) == (0, 0)
        assert ref.find_char(2) == (1, 0)
        assert ref.find_char(3) == (2, 0)
        assert ref.char_start(2) == 3
        assert ref.char_start(3) == 6
        ref.replace(1, "C", 4)
        assert ref.get(1) == ("C", 4)
        assert ref.delete(0) == ("a", 2)
        assert len(ref) == 2
        ref.checkrep()

    def test_bounds(self):
        ref = ReferenceIndex()
        with pytest.raises(IndexError):
            ref.find_char(0)
        with pytest.raises(IndexError):
            ref.get(0)
        with pytest.raises(IndexError):
            ref.delete(0)
        with pytest.raises(IndexError):
            ref.insert(1, "x", 1)
        with pytest.raises(IndexError):
            ref.char_start(1)
