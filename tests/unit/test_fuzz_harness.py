"""The fuzzer fuzzes deterministically — and its machinery is itself
under test: generation, the oracle, the runner, and the shrinker.

The load-bearing property is exact replayability (identical seed ⇒
byte-identical trace ⇒ identical run digest); everything else — shrink
convergence, failure-identity preservation, counter accounting — keeps
the harness trustworthy enough that a red fuzz run always means a real
bug and a green one always means the same ground was covered.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.generators import (
    MODES,
    POS_SCALE,
    PROFILES,
    Trace,
    corpus_strings,
    generate_trace,
)
from repro.fuzz.model import (
    InvariantViolation,
    Violation,
    apply_op,
    op_delta,
    resolve_pos,
)
from repro.fuzz.runner import FuzzRunner, execute_trace, run_trace
from repro.fuzz import runner as runner_mod
from repro.fuzz.shrink import shrink_trace
from repro.obs import default_registry


class TestGenerators:
    def test_same_seed_same_trace_bytes(self):
        for profile in PROFILES:
            for seed in (0, 1, 99, 2**31):
                a = generate_trace(seed, profile)
                b = generate_trace(seed, profile)
                assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        traces = {generate_trace(seed, "ci").to_json()
                  for seed in range(30)}
        assert len(traces) > 25, "seeds barely vary the trace"

    def test_json_round_trip_is_identity(self):
        for seed in range(20):
            trace = generate_trace(seed, "deep")
            again = Trace.from_json(trace.to_json())
            assert again == trace
            assert again.to_json() == trace.to_json()

    def test_trace_validates_enums(self):
        with pytest.raises(ValueError):
            Trace(seed=1, mode="telepathy")
        with pytest.raises(ValueError):
            Trace(seed=1, scheme="rot13")
        with pytest.raises(ValueError):
            Trace(seed=1, index="btree")

    def test_engine_profile_stays_networkless(self):
        for seed in range(25):
            trace = generate_trace(seed, "engine")
            assert trace.mode == "engine"
            assert trace.faults is None

    def test_corpus_strings_deterministic_and_degenerate(self):
        a = corpus_strings(7, 30)
        assert a == corpus_strings(7, 30)
        assert "" in a                      # empty
        assert any(len(s) == 1 for s in a)  # single char
        assert any(len(s.encode()) > len(s) for s in a)  # multibyte
        assert all("\x00" not in s for s in a)

    def test_modes_all_reachable(self):
        # ci deliberately never draws workspace mode — its 3-tuple
        # weights predate the fourth mode and must keep their rng
        # stream (and recorded digests) byte-identical
        seen = {generate_trace(seed, "ci").mode for seed in range(120)}
        assert seen == set(MODES) - {"workspace"}
        assert all(generate_trace(seed, "workspace").mode == "workspace"
                   for seed in range(10))

    def test_collab_profile_draws_many_clients(self):
        counts = {generate_trace(seed, "collab").clients
                  for seed in range(60)}
        assert counts <= set(range(2, 17))
        assert len(counts) > 4, "the 2-16 writer draw barely varies"
        assert all(generate_trace(seed, "collab").mode == "concurrent"
                   for seed in range(20))

    def test_default_profiles_stay_two_client(self):
        """Profiles without a widened max_clients never draw from the
        rng for the client count — pre-collab traces (and digests)
        must stay byte-identical."""
        for profile in ("ci", "quick", "deep", "burst"):
            for seed in range(40):
                trace = generate_trace(seed, profile)
                assert trace.clients == (
                    2 if trace.mode == "concurrent" else 1)


class TestOracle:
    def test_resolve_pos_bounds(self):
        for length in (0, 1, 7, 100):
            assert resolve_pos(0, length) == 0
            assert resolve_pos(POS_SCALE, length) == length
            for q in (1, 4999, 9999):
                assert 0 <= resolve_pos(q, length) <= length

    def test_apply_op_matches_delta_semantics(self):
        """The string oracle and the Delta an op denotes must agree —
        otherwise the fuzzer tests the wrong specification."""
        text = "hello cruel world"
        cases = [
            ("i", 0, "HI ", 0),
            ("i", POS_SCALE, "!", 0),
            ("d", 3000, 4, 0),
            ("r", 5000, 3, "XYZ", 0),
            ("r", 0, 0, "", 0),       # resolves to a no-op
            ("d", POS_SCALE, 5, 0),   # delete past end clamps to no-op
        ]
        for op in cases:
            delta = op_delta(op, len(text))
            via_oracle = apply_op(text, op)
            if delta is None:
                assert via_oracle == text or op[0] == "d"
            else:
                assert delta.apply(text) == via_oracle

    def test_violation_serializes(self):
        v = Violation(kind="oracle-divergence", step=3, detail="boom")
        assert json.loads(json.dumps(v.to_dict()))["kind"] == \
            "oracle-divergence"


class TestRunner:
    def test_identical_seed_identical_digest(self):
        a = FuzzRunner(seed=5, iters=30, profile="ci").run()
        b = FuzzRunner(seed=5, iters=30, profile="ci").run()
        assert a.digest == b.digest
        assert a.ok and b.ok

    def test_different_seed_different_digest(self):
        a = FuzzRunner(seed=5, iters=10, profile="quick").run()
        b = FuzzRunner(seed=6, iters=10, profile="quick").run()
        assert a.digest != b.digest

    def test_every_mode_executes_clean(self):
        for mode in MODES:
            trace = generate_trace(17, "ci", mode=mode)
            assert run_trace(trace) is None, mode

    def test_cases_counter_accounts_every_trace(self):
        before = default_registry().snapshot().get("fuzz.cases", 0)
        FuzzRunner(seed=1, iters=12, profile="quick").run()
        after = default_registry().snapshot()["fuzz.cases"]
        assert after - before == 12

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            FuzzRunner(profile="warp-speed")

    def test_corpus_written_on_failure(self, tmp_path, monkeypatch):
        """A violation must leave a replay file that parses back into
        the failing trace."""
        real = runner_mod.execute_trace

        def sabotaged(trace):
            raise InvariantViolation(
                Violation("oracle-divergence", 0, "planted"))

        monkeypatch.setattr(runner_mod, "execute_trace", sabotaged)
        report = FuzzRunner(seed=2, iters=3, profile="quick",
                            corpus_dir=tmp_path, shrink=False,
                            max_failures=1).run()
        monkeypatch.setattr(runner_mod, "execute_trace", real)
        assert not report.ok
        assert len(report.corpus_files) == 1
        data = json.loads((tmp_path / report.corpus_files[0].split("/")[-1])
                          .read_text())
        assert data["violation"]["kind"] == "oracle-divergence"
        assert Trace.from_dict(data["trace"]).seed == 2

    def test_crash_wrapped_as_violation(self, monkeypatch):
        def exploding(trace):
            raise ZeroDivisionError("kaboom")

        monkeypatch.setattr(runner_mod, "_MODES",
                            {"engine": exploding})
        violation = run_trace(generate_trace(3, "engine"))
        assert violation is not None
        assert violation.kind == "crash-ZeroDivisionError"


class TestShrink:
    def _planted(self, needle: str):
        """An execute_trace stand-in failing iff ``needle`` is inserted."""
        def fake(trace):
            for op in trace.ops:
                if op[0] == "i" and needle in op[2]:
                    raise InvariantViolation(
                        Violation("oracle-divergence", 0, "planted"))
            return "fp"
        return fake

    def test_shrinks_to_the_culprit_op(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_trace",
                            self._planted("BUG"))
        base = generate_trace(9, "ci", mode="engine")
        ops = base.ops + (("i", 0, "xxBUGxx", 0),)
        shrunk = shrink_trace(
            base.replaced(ops=ops),
            Violation("oracle-divergence", 0, "planted"))
        # everything irrelevant is gone: one op, minimal text, no init
        assert len(shrunk.ops) == 1
        assert shrunk.ops[0][0] == "i" and "BUG" in shrunk.ops[0][2]
        assert shrunk.init == ""

    def test_preserves_failure_identity(self, monkeypatch):
        """A shrink candidate failing with a *different* kind must be
        rejected — the minimizer may not wander between bugs."""
        def two_bugs(trace):
            if any(op[0] == "d" for op in trace.ops):
                raise InvariantViolation(Violation("length-mismatch", 0, ""))
            if any(op[0] == "i" for op in trace.ops):
                raise InvariantViolation(Violation("roundtrip", 0, ""))
            return "fp"

        monkeypatch.setattr(runner_mod, "execute_trace", two_bugs)
        trace = Trace(seed=1, mode="engine", ops=(
            ("d", 0, 1, 0), ("i", 0, "x", 0)))
        shrunk = shrink_trace(trace, Violation("roundtrip", 0, ""))
        # the 'd' op (which trips the OTHER bug) must have been removed
        assert all(op[0] != "d" for op in shrunk.ops)
        assert any(op[0] == "i" for op in shrunk.ops)

    def test_returns_original_when_nothing_smaller_fails(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_trace",
                            lambda trace: "fp")
        trace = generate_trace(4, "ci", mode="engine")
        assert shrink_trace(trace, Violation("roundtrip", 0, "")) == trace

    def test_shrink_steps_counter_moves(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "execute_trace",
                            self._planted("Z9Z"))
        before = default_registry().snapshot().get("fuzz.shrink_steps", 0)
        base = generate_trace(21, "ci", mode="engine")
        shrink_trace(base.replaced(ops=base.ops + (("i", 0, "Z9Z", 0),)),
                     Violation("oracle-divergence", 0, ""))
        after = default_registry().snapshot()["fuzz.shrink_steps"]
        assert after > before


@pytest.mark.slow
class TestFullBudget:
    """The budgets `make fuzz-long` pays for; excluded from `make test`."""

    def test_five_thousand_mixed_iterations_clean(self):
        report = FuzzRunner(seed=424242, iters=5000, profile="ci").run()
        assert report.ok, report.failures

    def test_deep_profile_clean(self):
        report = FuzzRunner(seed=515151, iters=1500,
                            profile="deep").run()
        assert report.ok, report.failures
