"""The transport tap seam: passive observation at the wire boundary.

``Transport.add_tap`` mirrors ``Channel.add_tap`` one layer down — the
same :class:`~repro.security.EavesdropperTap` that models the paper's
honest-but-curious network observer now attaches to real socket
traffic.  The load-bearing assertions: the tap really sees every frame
of a live socket session (the threat is modelled, not mocked), and
what it sees contains no plaintext (the paper's confidentiality claim
at the transport layer).
"""

from __future__ import annotations

import pytest

from repro.extension.session import PrivateEditingSession
from repro.net.server import ServerThread
from repro.net.transport import (
    AsyncioSocketTransport,
    InProcessTransport,
    WireExchange,
)
from repro.security import EavesdropperTap
from repro.services import registry

SECRET = "attack at dawn kilimanjaro"


@pytest.fixture(scope="module")
def served():
    with ServerThread(shards=2) as (host, port):
        yield host, port


def test_tap_observes_real_socket_frames(served):
    host, port = served
    transport = AsyncioSocketTransport(host, port, service="gdocs")
    tap = EavesdropperTap()
    transport.add_tap(tap)
    assert transport.taps == (tap,)
    try:
        session = PrivateEditingSession("tapped-doc", "pw",
                                        transport=transport,
                                        service="gdocs")
        session.open()
        session.type_text(0, SECRET)
        assert session.save().ok
        session.close()
    finally:
        transport.close()
    # the tap saw the live traffic: at least open + save round trips
    assert len(tap.exchanges) >= 2
    assert all(isinstance(e, WireExchange) for e in tap.exchanges)
    # ...and classified a real update out of it
    assert any(u.kind in ("full", "delta")
               for u in tap.observed_updates())
    # ...but never a byte of plaintext (the whole point)
    assert tap.plaintext_sightings(SECRET) == 0


def test_tap_observes_in_process_frames():
    transport = InProcessTransport(registry.make_server("gdocs"))
    tap = EavesdropperTap()
    transport.add_tap(tap)
    session = PrivateEditingSession("doc", "pw", transport=transport,
                                    service="gdocs")
    session.open()
    session.type_text(0, SECRET)
    assert session.save().ok
    assert len(tap.exchanges) >= 2
    assert tap.plaintext_sightings(SECRET) == 0


def test_wire_exchange_quacks_like_a_channel_exchange():
    """EavesdropperTap was written against Channel's Exchange; the
    transport-level WireExchange must satisfy the same surface."""
    exchange = WireExchange.__new__(WireExchange)
    for field in ("request", "response", "sent_at", "latency"):
        assert field in WireExchange.__dataclass_fields__, field


def test_taps_default_empty_and_accumulate():
    transport = InProcessTransport(registry.make_server("gdocs"))
    assert transport.taps == ()
    first, second = EavesdropperTap(), EavesdropperTap()
    transport.add_tap(first)
    transport.add_tap(second)
    assert transport.taps == (first, second)
