"""ReplicatedService internals: quorum arithmetic, routing, health."""

import pytest

from repro.net.http import HttpRequest
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import FlakyServer, ReplicatedService


def service(n=3, **kw):
    backends = [FlakyServer(GDocsServer()) for _ in range(n)]
    return ReplicatedService(backends, **kw), backends


def open_doc(svc, doc_id="doc"):
    response = svc(protocol.open_request(doc_id))
    fields = response.form
    return fields[protocol.F_SID], int(fields[protocol.A_REV])


class TestQuorum:
    def test_default_quorum_is_majority(self):
        assert ReplicatedService([GDocsServer()]).quorum == 1
        assert ReplicatedService([GDocsServer()] * 3).quorum == 2
        assert ReplicatedService([GDocsServer()] * 5).quorum == 3

    def test_custom_quorum(self):
        svc = ReplicatedService([GDocsServer()] * 3, quorum=3)
        assert svc.quorum == 3

    def test_no_backends_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedService([])

    def test_open_fails_below_quorum(self):
        svc, backends = service(3)
        backends[0].outage(5)
        backends[1].outage(5)
        response = svc(protocol.open_request("doc"))
        assert response.status == 503

    def test_write_fails_below_quorum(self):
        svc, backends = service(3)
        sid, rev = open_doc(svc)
        svc(protocol.full_save_request("doc", sid, rev, "content"))
        backends[0].outage(5)
        backends[1].outage(5)
        response = svc(protocol.delta_save_request("doc", sid, 1, "+x"))
        assert response.status == 503

    def test_strict_quorum_all(self):
        svc, backends = service(3, quorum=3)
        sid, rev = open_doc(svc)
        backends[2].outage(1)
        response = svc(protocol.full_save_request("doc", sid, rev, "x"))
        assert response.status == 503


class TestSidRewriting:
    def test_logical_sid_masks_backend_sids(self):
        svc, backends = service(3)
        sid, _ = open_doc(svc)
        assert sid.startswith("rep:")
        # backends each issued their own sids
        backend_sids = {
            slot.doc("doc").sid for slot in svc._slots
        }
        assert sid not in backend_sids

    def test_per_backend_rev_tracking_after_heal(self):
        svc, backends = service(3)
        sid, rev = open_doc(svc)
        svc(protocol.full_save_request("doc", sid, rev, "v1"))
        backends[2].outage(1)
        svc(protocol.delta_save_request("doc", sid, 1, "+a"))
        # backend 2 degraded; others advanced
        svc(protocol.delta_save_request("doc", sid, 2, "+b"))  # heals 2
        revs = [slot.doc("doc").rev for slot in svc._slots]
        contents = [b._backend.store.get("doc").content for b in backends]
        assert len(set(contents)) == 1
        # the healed backend's private rev may differ; the content is
        # what matters, and subsequent writes keep succeeding:
        response = svc(protocol.delta_save_request("doc", sid, int(
            response_rev := svc._slots[0].doc("doc").rev
        ), "+c"))
        assert response.ok


class TestReads:
    def test_read_prefers_majority(self):
        svc, backends = service(3)
        sid, rev = open_doc(svc)
        svc(protocol.full_save_request("doc", sid, rev, "agreed"))
        backends[1]._backend.store.get("doc").content = "rogue"
        response = svc(protocol.fetch_request("doc"))
        assert response.body == "agreed"
        assert svc.divergences

    def test_read_all_down(self):
        svc, backends = service(2)
        open_doc(svc)
        for b in backends:
            b.outage(5)
        response = svc(protocol.fetch_request("doc"))
        assert response.status == 503


class TestFlakyServer:
    def test_outage_counts_requests(self):
        flaky = FlakyServer(GDocsServer())
        flaky.outage(2)
        r1 = flaky(protocol.open_request("d"))
        r2 = flaky(protocol.open_request("d"))
        r3 = flaky(protocol.open_request("d"))
        assert r1.status == r2.status == 503
        assert r3.ok
        assert flaky.requests_refused == 2
