"""IndexedAVL: same behavioural contract as the skip list, plus
balance invariants."""

import random

import pytest

from repro.datastructures.indexed_avl import IndexedAVL
from repro.errors import DataStructureError


@pytest.fixture
def tree():
    return IndexedAVL()


def fill(tree, widths):
    for i, w in enumerate(widths):
        tree.insert(i, f"b{i}", w)


class TestBasics:
    def test_empty(self, tree):
        assert len(tree) == 0
        assert tree.total_chars == 0
        tree.checkrep()

    def test_insert_and_get(self, tree):
        fill(tree, [3, 4, 5])
        assert tree.get(0) == ("b0", 3)
        assert tree.get(2) == ("b2", 5)
        assert tree.total_chars == 12
        tree.checkrep()

    def test_find_char(self, tree):
        for i, chunk in enumerate(["abc", "fgh", "ijk"]):
            tree.insert(i, chunk, len(chunk))
        assert tree.find_char(0) == (0, 0)
        assert tree.find_char(4) == (1, 1)
        assert tree.find_char(8) == (2, 2)
        with pytest.raises(IndexError):
            tree.find_char(9)

    def test_delete(self, tree):
        fill(tree, [1, 2, 3])
        assert tree.delete(1) == ("b1", 2)
        assert list(tree.values()) == ["b0", "b2"]
        tree.checkrep()

    def test_replace_width_propagates(self, tree):
        fill(tree, [4, 4, 4])
        tree.replace(0, "wide", 8)
        assert tree.find_char(8) == (1, 0)
        assert tree.total_chars == 16
        tree.checkrep()

    def test_char_start(self, tree):
        fill(tree, [3, 1, 4])
        assert [tree.char_start(i) for i in range(4)] == [0, 3, 4, 8]

    def test_bounds(self, tree):
        with pytest.raises(IndexError):
            tree.get(0)
        with pytest.raises(IndexError):
            tree.delete(0)
        with pytest.raises(DataStructureError):
            tree.insert(0, "x", -2)


class TestBalance:
    def test_sequential_inserts_stay_balanced(self, tree):
        for i in range(512):
            tree.insert(i, i, 1)
        tree.checkrep()  # raises if any node violates AVL balance
        # height of a balanced tree of 512 nodes is <= 1.44*log2(513)+...
        assert tree._root.height <= 14

    def test_front_inserts_stay_balanced(self, tree):
        for i in range(512):
            tree.insert(0, i, 1)
        tree.checkrep()
        assert tree._root.height <= 14

    def test_random_churn_stays_balanced(self, tree):
        rng = random.Random(3)
        for step in range(2000):
            if len(tree) == 0 or rng.random() < 0.55:
                tree.insert(rng.randint(0, len(tree)), step,
                            rng.randint(1, 8))
            else:
                tree.delete(rng.randrange(len(tree)))
        tree.checkrep()


class TestExtend:
    def test_extend_empty_tree_is_balanced(self, tree):
        tree.extend([(i, 1 + i % 8) for i in range(1000)])
        tree.checkrep()
        assert len(tree) == 1000
        assert tree._root.height <= 11  # perfectly balanced build

    def test_extend_matches_inserts(self):
        a, b = IndexedAVL(), IndexedAVL()
        items = [(f"v{i}", 1 + i % 5) for i in range(64)]
        for i, (v, w) in enumerate(items):
            a.insert(i, v, w)
        b.extend(items)
        assert list(a.items()) == list(b.items())

    def test_extend_onto_existing(self, tree):
        tree.insert(0, "pre", 1)
        tree.extend([("a", 2)])
        assert list(tree.items()) == [("pre", 1), ("a", 2)]
        tree.checkrep()

    def test_extend_negative_width(self, tree):
        with pytest.raises(DataStructureError):
            tree.extend([("x", -3)])
