"""Operational transformation: unit cases for transform and compose."""

import pytest

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.core.ot import compose, transform


def T(a_text, b_text, priority="left"):
    return transform(Delta.parse(a_text), Delta.parse(b_text), priority)


class TestTransformCases:
    def test_disjoint_inserts(self):
        # a inserts at 0, b inserts at 5 of "abcdefgh"
        a = Delta.insertion(0, "X")
        b = Delta.insertion(5, "Y")
        a2 = transform(a, b, "left")
        b2 = transform(b, a, "right")
        doc = "abcdefgh"
        assert b2.apply(a.apply(doc)) == a2.apply(b.apply(doc)) == "XabcdeYfgh"

    def test_same_position_insert_priority(self):
        a = Delta.insertion(2, "A")
        b = Delta.insertion(2, "B")
        doc = "xxxx"
        left_first = transform(b, a, "right").apply(a.apply(doc))
        assert left_first == "xxABxx"
        other = transform(a, b, "left").apply(b.apply(doc))
        assert other == "xxABxx"

    def test_delete_vs_delete_overlap(self):
        a = Delta.deletion(1, 3)   # delete [1,4)
        b = Delta.deletion(2, 3)   # delete [2,5)
        doc = "abcdefg"
        merged_a = transform(a, b, "left").apply(b.apply(doc))
        merged_b = transform(b, a, "right").apply(a.apply(doc))
        assert merged_a == merged_b == "afg"

    def test_insert_inside_deleted_region(self):
        a = Delta.insertion(3, "NEW")  # insert inside what b deletes
        b = Delta.deletion(1, 5)
        doc = "abcdefgh"
        out = transform(a, b, "left").apply(b.apply(doc))
        out2 = transform(b, a, "right").apply(a.apply(doc))
        assert out == out2
        assert "NEW" in out  # the insertion survives the deletion

    def test_identity_against_anything(self):
        b = Delta.parse("=2\t-3\t+uv")
        assert transform(Delta(()), b, "left") == Delta(())

    def test_against_identity_is_canonicalish(self):
        a = Delta.parse("=2\t+xy\t-1")
        out = transform(a, Delta(()), "left")
        assert out.apply("abcdef") == a.apply("abcdef")

    def test_bad_priority(self):
        with pytest.raises(ValueError):
            transform(Delta(()), Delta(()), "middle")

    def test_paper_example_merged_with_append(self):
        doc = "abcdefg"
        a = Delta.parse("=2\t-3\t+uv\t=2\t+w")  # -> abuvfgw
        b = Delta.insertion(7, "!")             # -> abcdefg!
        one = transform(a, b, "left").apply(b.apply(doc))
        two = transform(b, a, "right").apply(a.apply(doc))
        assert one == two
        assert one.startswith("abuvfg")
        assert "!" in one and "w" in one


class TestComposeCases:
    def test_sequential_inserts(self):
        first = Delta.insertion(0, "AB")
        second = Delta.insertion(1, "x")
        doc = "zz"
        assert compose(first, second).apply(doc) == \
            second.apply(first.apply(doc)) == "AxBzz"

    def test_insert_then_delete_it(self):
        first = Delta.insertion(2, "JUNK")
        second = Delta.deletion(2, 4)
        composed = compose(first, second)
        assert composed.apply("abcd") == "abcd"
        assert composed.canonical().is_identity or composed.apply("abcd") == "abcd"

    def test_delete_then_insert(self):
        first = Delta.deletion(0, 2)
        second = Delta.insertion(0, "XY")
        assert compose(first, second).apply("abcd") == "XYcd"

    def test_compose_with_identity(self):
        delta = Delta.parse("=1\t+q\t-2")
        doc = "abcdef"
        assert compose(delta, Delta(())).apply(doc) == delta.apply(doc)
        assert compose(Delta(()), delta).apply(doc) == delta.apply(doc)

    def test_three_way_fold(self):
        doc = "the quick brown fox"
        deltas = [
            Delta.insertion(0, ">> "),
            Delta.deletion(7, 6),
            Delta.replacement(3, 3, "slow"),
        ]
        want = doc
        folded = Delta(())
        for delta in deltas:
            want = delta.apply(want)
            folded = compose(folded, delta)
        assert folded.apply(doc) == want
