"""Batched (NumPy) AES must agree with the scalar core exactly."""

import os

import pytest

from repro.crypto import aes_batch
from repro.crypto.aes import AES
from repro.errors import BlockSizeError


@pytest.fixture
def cipher():
    return AES(bytes(range(16)))


class TestAgreement:
    @pytest.mark.parametrize("nblocks", [1, 2, 3, 15, 16, 17, 100])
    def test_encrypt_matches_scalar(self, cipher, nblocks):
        data = os.urandom(16 * nblocks)
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert aes_batch.encrypt_blocks(cipher, data) == want

    @pytest.mark.parametrize("nblocks", [1, 2, 17, 64])
    def test_decrypt_matches_scalar(self, cipher, nblocks):
        data = os.urandom(16 * nblocks)
        want = b"".join(
            cipher.decrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert aes_batch.decrypt_blocks(cipher, data) == want

    def test_round_trip(self, cipher):
        data = os.urandom(16 * 33)
        assert aes_batch.decrypt_blocks(
            cipher, aes_batch.encrypt_blocks(cipher, data)
        ) == data

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_all_key_sizes(self, key_len):
        cipher = AES(bytes(key_len))
        data = os.urandom(16 * 8)
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert aes_batch.encrypt_blocks(cipher, data) == want


class TestEdges:
    def test_empty_input(self, cipher):
        assert aes_batch.encrypt_blocks(cipher, b"") == b""
        assert aes_batch.decrypt_blocks(cipher, b"") == b""

    @pytest.mark.parametrize("bad_len", [1, 15, 17, 31])
    def test_ragged_input_rejected(self, cipher, bad_len):
        with pytest.raises(BlockSizeError):
            aes_batch.encrypt_blocks(cipher, bytes(bad_len))
        with pytest.raises(BlockSizeError):
            aes_batch.decrypt_blocks(cipher, bytes(bad_len))
