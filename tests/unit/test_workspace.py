"""The Workspace: one tenant secret fanned out over many documents,
encrypted search, and audit-chain rollback detection.

Everything runs against a real catalog-wrapped gdocs server from the
registry — no mocks — because the load-bearing claims are end to end:
a word typed into one document is findable (and only there) via a
trapdoor the server cannot read, and a provider that rolls a document
back is caught whether or not it bothers to forge a consistent chain.
"""

from __future__ import annotations

import pytest

from repro.client.workspace import Workspace
from repro.security.adversary import ActiveServerAdversary
from repro.services import registry
from repro.services.gdocs import protocol


@pytest.fixture()
def server():
    return registry.make_server("gdocs", catalog=True)


@pytest.fixture()
def ws(server):
    workspace = Workspace("tenant-secret", server=server, rng_seed=7)
    yield workspace
    workspace.close_all()


def _seed_doc(ws, doc_id: str, text: str) -> None:
    ws.open(doc_id)
    ws.type_text(doc_id, 0, text)
    assert ws.save(doc_id).ok


class TestConstruction:
    def test_needs_exactly_one_backend(self, server):
        with pytest.raises(ValueError, match="exactly one"):
            Workspace("s")
        with pytest.raises(ValueError, match="exactly one"):
            Workspace("s", server=server, transport=object())

    def test_per_document_passwords_derive_from_the_secret(self, server):
        ws = Workspace("tenant-secret", server=server)
        again = Workspace("tenant-secret", server=server)
        other = Workspace("other-secret", server=server)
        assert ws.password_for("a") == again.password_for("a")
        assert ws.password_for("a") != ws.password_for("b")
        assert ws.password_for("a") != other.password_for("a")
        assert "tenant-secret" not in ws.password_for("a")


class TestEditingAndSearch:
    def test_multi_doc_round_trip_stays_encrypted(self, ws, server):
        _seed_doc(ws, "alpha", "the walrus sings")
        _seed_doc(ws, "beta", "the carpenter weeps")
        assert ws.text("alpha") == "the walrus sings"
        # the provider stores ciphertext, never the plaintext
        assert "walrus" not in server.store.get("alpha").content
        recovered = registry.decrypt_view(
            "gdocs", ws.session("alpha").server_view(),
            ws.password_for("alpha"), "recb")
        assert recovered == "the walrus sings"

    def test_search_finds_exactly_the_right_documents(self, ws):
        _seed_doc(ws, "alpha", "the walrus sings")
        _seed_doc(ws, "beta", "the carpenter weeps")
        assert ws.search("walrus") == ["alpha"]
        assert ws.search("the") == ["alpha", "beta"]
        assert ws.search("absent") == []

    def test_index_follows_edits_and_deletes(self, ws):
        _seed_doc(ws, "alpha", "ephemeral word")
        assert ws.search("ephemeral") == ["alpha"]
        ws.delete_text("alpha", 0, len("ephemeral "))
        assert ws.save("alpha").ok
        assert ws.search("ephemeral") == []
        assert ws.search("word") == ["alpha"]

    def test_list_docs_reflects_the_catalog(self, ws):
        _seed_doc(ws, "beta", "b")
        _seed_doc(ws, "alpha", "a")
        assert ws.list_docs() == ["alpha", "beta"]

    def test_reopen_adopts_saved_state(self, ws):
        _seed_doc(ws, "alpha", "persistent walrus")
        ws.close("alpha")
        assert "alpha" not in ws.open_docs
        assert ws.open("alpha") == "persistent walrus"
        assert ws.search("persistent") == ["alpha"]
        assert ws.alerts == []  # a clean reopen raises nothing

    def test_forged_posting_blobs_are_dropped(self, ws, server):
        """A tampering catalog can suppress results but not inject
        document ids: a blob it makes up fails authentication."""
        _seed_doc(ws, "alpha", "real word")
        trapdoor = ws.indexer.trapdoor("real")
        server.catalog.apply_records([("+", trapdoor, "ff" * 20)])
        assert ws.search("real") == ["alpha"]


class TestAuditTrail:
    def _history(self, ws, doc_id: str, texts) -> None:
        ws.open(doc_id)
        for text in texts:
            ws.type_text(doc_id, 0, text + " ")
            assert ws.save(doc_id).ok

    def test_honest_history_verifies_clean(self, ws):
        self._history(ws, "alpha", ["one", "two", "three"])
        assert ws.verify_history("alpha") == []
        assert ws.alerts == []

    def test_plain_rollback_is_detected(self, ws, server):
        self._history(ws, "alpha", ["one", "two", "three"])
        ActiveServerAdversary(server.store).rollback("alpha", 1)
        alerts = ws.verify_history("alpha")
        assert alerts and any("rollback" in a for a in alerts)
        assert ws.alerts  # recorded on the workspace too

    def test_forged_self_consistent_chain_is_detected(self, ws, server):
        """The sophisticated rollback: rewind the store AND rebuild a
        chain whose every link recomputes over the stale content.  Only
        the client's remembered (rev, link) anchor can refute it."""
        self._history(ws, "alpha", ["one", "two", "three"])
        adv = ActiveServerAdversary(server.store)
        stored = server.store.get("alpha")
        old = stored.history[1]
        adv.overwrite("alpha", old)
        rev_now = ws.session("alpha").client.revision
        history = [(rev, protocol.content_hash(f"forged-{rev}"))
                   for rev in range(1, rev_now)]
        history.append((rev_now, protocol.content_hash(old)))
        adv.forge_chain(server.catalog, "alpha", history)
        alerts = ws.verify_history("alpha")
        assert alerts and any("forged chain" in a for a in alerts)

    def test_vanished_chain_is_detected(self, ws, server):
        self._history(ws, "alpha", ["one"])
        with server.catalog._lock:
            server.catalog._chains.clear()
        alerts = ws.verify_history("alpha")
        assert alerts and any("vanished" in a for a in alerts)

    def test_incremental_adoption_tracks_saves(self, ws):
        """Every acknowledged save advances the trust anchor without a
        full chain re-fetch — and without false alarms."""
        self._history(ws, "alpha", ["one", "two", "three", "four"])
        assert ws.alerts == []
        assert ws._trust["alpha"][0] == \
            ws.session("alpha").client.revision
