"""The workspace fuzz mode: generation constraints, clean execution,
and digest determinism.

The heavyweight oracles (search vs ground truth, rollback attacks)
run inside ``_run_workspace`` itself on every trace; what these tests
pin is the harness contract around them — workspace traces are gdocs-
only, replay byte-identically, and a handful of seeds execute clean
end to end (``make fuzz`` then runs the real budget).
"""

from __future__ import annotations

import pytest

from repro.fuzz.generators import PROFILES, Trace, generate_trace
from repro.fuzz.runner import FuzzRunner, run_trace


def test_workspace_profile_shape():
    profile = PROFILES["workspace"]
    assert profile.mode_weights == (0.0, 0.0, 0.0, 1.0)
    for seed in range(20):
        trace = generate_trace(seed, "workspace")
        assert trace.mode == "workspace"
        assert trace.service == "gdocs"
        assert trace.faults is None
        assert 1 <= trace.clients <= profile.max_clients


def test_workspace_traces_are_gdocs_only():
    with pytest.raises(ValueError, match="gdocs"):
        Trace(seed=1, mode="workspace", service="bespin")


def test_workspace_traces_replay_byte_identically():
    for seed in (0, 7, 99):
        assert generate_trace(seed, "workspace").to_json() == \
            generate_trace(seed, "workspace").to_json()


def test_a_handful_of_seeds_execute_clean():
    for seed in range(4):
        trace = generate_trace(seed, "workspace")
        assert run_trace(trace) is None, seed


def test_both_schemes_reach_the_workspace_oracles():
    seen = {generate_trace(seed, "workspace").scheme
            for seed in range(40)}
    assert seen == {"recb", "rpc"}


def test_runner_digest_is_deterministic():
    a = FuzzRunner(seed=3, iters=4, profile="workspace").run()
    b = FuzzRunner(seed=3, iters=4, profile="workspace").run()
    assert a.ok and b.ok
    assert a.digest == b.digest
