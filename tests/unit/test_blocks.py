"""Multi-character block packing and chunking."""

import pytest

from repro.core import blocks
from repro.errors import BlockSizeError


class TestPacking:
    def test_round_trip_ascii(self):
        for chunk in ["", "a", "abcdefgh"]:
            assert blocks.unpack_chars(blocks.pack_chars(chunk)) == chunk

    def test_round_trip_unicode(self):
        for chunk in ["é", "中文", "日本語"[:2], "🎉"]:
            assert blocks.unpack_chars(blocks.pack_chars(chunk)) == chunk

    def test_padded_to_payload_width(self):
        assert len(blocks.pack_chars("a")) == blocks.PAYLOAD_BYTES

    def test_too_wide_rejected(self):
        with pytest.raises(BlockSizeError):
            blocks.pack_chars("ééééé")  # 10 UTF-8 bytes

    def test_nul_rejected(self):
        with pytest.raises(BlockSizeError):
            blocks.pack_chars("a\x00b")

    def test_unpack_wrong_width(self):
        with pytest.raises(BlockSizeError):
            blocks.unpack_chars(b"abc")


class TestChunking:
    def test_exact_multiple(self):
        assert blocks.chunk_text("abcdefgh" * 2, 8) == ["abcdefgh"] * 2

    def test_remainder(self):
        assert blocks.chunk_text("abcdefghij", 8) == ["abcdefgh", "ij"]

    def test_block_chars_parameter(self):
        assert blocks.chunk_text("abcdef", 2) == ["ab", "cd", "ef"]
        assert blocks.chunk_text("abcdef", 1) == list("abcdef")

    def test_empty(self):
        assert blocks.chunk_text("", 8) == []

    def test_utf8_byte_limit_respected(self):
        # 8 chars of 3-byte CJK would be 24 bytes; chunks must shrink.
        chunks = blocks.chunk_text("中" * 10, 8)
        assert all(
            len(c.encode("utf-8")) <= blocks.PAYLOAD_BYTES for c in chunks
        )
        assert "".join(chunks) == "中" * 10

    def test_mixed_width_text(self):
        text = "aé中b🎉cd"
        chunks = blocks.chunk_text(text, 8)
        assert "".join(chunks) == text
        assert all(
            len(c) <= 8 and len(c.encode("utf-8")) <= 8 for c in chunks
        )

    @pytest.mark.parametrize("bad", [0, -1, 9, 100])
    def test_bad_block_chars(self, bad):
        with pytest.raises(BlockSizeError):
            blocks.chunk_text("abc", bad)

    def test_nul_in_text_rejected(self):
        with pytest.raises(BlockSizeError):
            blocks.chunk_text("a\x00b", 8)

    def test_greedy_fill(self):
        """Fresh chunking leaves no fragmentation: every chunk but the
        last is at capacity."""
        chunks = blocks.chunk_text("x" * 100, 7)
        assert all(len(c) == 7 for c in chunks[:-1])
