"""The service-side catalog: record codec, the tenant store, and the
``/Catalog`` endpoint (including its error branches).

The store is exercised directly; the endpoint through a
:class:`CatalogService` wrapping a stub server, so the delegation and
piggyback paths are pinned without dragging in a whole session stack
(test_workspace.py covers that end to end).
"""

from __future__ import annotations

import pytest

from repro.core.auditchain import decode_entries
from repro.encoding.formenc import encode_form
from repro.errors import ProtocolError
from repro.net.http import HttpRequest, HttpResponse
from repro.services.catalog import (
    CATALOG_PATH,
    F_AUDIT,
    F_INDEX,
    A_AUDIT_LINK,
    CatalogService,
    CatalogStore,
    catalog_chain_request,
    catalog_list_request,
    catalog_lookup_request,
    catalog_store_request,
    decode_records,
    encode_records,
)
from repro.services.gdocs import protocol


RECORDS = [("+", "aa" * 16, "bb" * 12), ("-", "cc" * 16, "dd" * 12)]


class TestRecordCodec:
    def test_round_trip(self):
        assert decode_records(encode_records(RECORDS)) == RECORDS
        assert decode_records("") == []
        assert encode_records([]) == ""

    def test_malformed_record_raises(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_records("no-colons-here")
        with pytest.raises(ProtocolError, match="unknown index record"):
            decode_records("?:aa:bb")


class TestCatalogStore:
    def test_postings_add_dedup_remove(self):
        store = CatalogStore()
        assert store.apply_records([("+", "t1", "blob")]) == 1
        store.apply_records([("+", "t1", "blob")])  # duplicate add
        assert store.lookup("t1") == ["blob"]
        assert store.posting_count == 1
        store.apply_records([("-", "t1", "blob")])
        assert store.lookup("t1") == []
        assert store.posting_count == 0
        assert store.lookup("never-seen") == []

    def test_doc_catalog(self):
        store = CatalogStore()
        store.note_doc("b")
        store.note_doc("a")
        store.note_doc("b")
        assert store.doc_ids() == ["a", "b"]

    def test_commit_mints_chain_links_and_dedups_replays(self):
        store = CatalogStore()
        assert store.commit("d", 1, "h1", audit=True) is True
        assert store.commit("d", 2, "h2", audit=True) is True
        # an idempotent replay answers from cache with the same rev —
        # the catalog must not double-append
        assert store.commit("d", 2, "h2", audit=True) is False
        assert store.commit("d", 1, "h1", audit=True) is False
        chain = store.chain("d")
        assert [e.rev for e in chain.entries] == [1, 2]
        assert store.head_link("d") == chain.head.link
        assert store.head_link("never-audited") is None

    def test_commit_applies_piggybacked_records_once(self):
        store = CatalogStore()
        records = [("+", "t1", "blob")]
        store.commit("d", 1, "h1", records=records)
        store.commit("d", 1, "h1", records=records)  # replay: no-op
        assert store.lookup("t1") == ["blob"]


def _stub_inner(response: HttpResponse):
    """A wrapped 'server' that records calls and answers canned."""
    def inner(request: HttpRequest) -> HttpResponse:
        inner.calls.append(request)
        return response
    inner.calls = []
    inner.sentinel_attr = "delegated"
    return inner


class TestCatalogEndpoint:
    def _service(self) -> CatalogService:
        return CatalogService(_stub_inner(HttpResponse(200, body="x")))

    def test_list_store_lookup_chain(self):
        svc = self._service()
        assert svc(catalog_list_request()).body == ""
        assert svc(catalog_store_request(
            [("+", "t1", "blob")])).body == "1"
        assert svc(catalog_lookup_request("t1")).body == "blob"
        svc.catalog.commit("doc", 1, "h1", audit=True)
        entries = decode_entries(svc(catalog_chain_request("doc")).body)
        assert [e.rev for e in entries] == [1]
        # none of the catalog ops touched the wrapped server
        assert svc.inner.calls == []

    def test_error_branches_answer_400(self):
        svc = self._service()
        cases = [
            # unknown op
            HttpRequest("POST", f"http://h{CATALOG_PATH}?op=teleport",
                        body=""),
            # lookup without a trapdoor
            HttpRequest("POST", f"http://h{CATALOG_PATH}?op=lookup",
                        body=""),
            # chain without a doc id
            HttpRequest("POST", f"http://h{CATALOG_PATH}?op=chain",
                        body=""),
            # store with malformed records
            HttpRequest("POST", f"http://h{CATALOG_PATH}?op=store",
                        body=encode_form({F_INDEX: "garbage"})),
        ]
        for request in cases:
            response = svc(request)
            assert response.status == 400, request.url
            assert "error" in response.form

    def test_non_catalog_requests_delegate_untouched(self):
        svc = self._service()
        response = svc(HttpRequest("GET", "http://h/Edit?docID=d"))
        assert response.body == "x"
        assert len(svc.inner.calls) == 1
        # attribute access delegates too (registry helpers rely on it)
        assert svc.sentinel_attr == "delegated"


class TestPiggyback:
    def _ack(self, rev: int, chash: str) -> HttpResponse:
        return HttpResponse(200, body=encode_form({
            protocol.A_STATUS: "ok",
            protocol.A_REV: str(rev),
            protocol.A_CONTENT_HASH: chash,
        }))

    def _save_request(self, fields: dict) -> HttpRequest:
        return HttpRequest("POST", "http://h/Edit?docID=d",
                           body=encode_form(fields))

    def test_audited_ack_gains_the_head_link(self):
        svc = CatalogService(_stub_inner(self._ack(1, "h1")))
        response = svc(self._save_request({F_AUDIT: "1"}))
        assert response.form[A_AUDIT_LINK] == svc.catalog.head_link("d")
        assert svc.catalog.doc_ids() == ["d"]

    def test_index_records_ride_the_save(self):
        svc = CatalogService(_stub_inner(self._ack(1, "h1")))
        svc(self._save_request({F_INDEX: encode_records(
            [("+", "t9", "blob9")])}))
        assert svc.catalog.lookup("t9") == ["blob9"]

    def test_legacy_wire_passes_through_byte_identical(self):
        """A request with neither idx nor aud — the entire pre-PR-10
        wire — must come back exactly as the wrapped server answered."""
        ack = self._ack(1, "h1")
        svc = CatalogService(_stub_inner(ack))
        response = svc(self._save_request({"docContents": "cipher"}))
        assert response is ack
        assert svc.catalog.head_link("d") is None

    def test_failed_save_commits_nothing(self):
        svc = CatalogService(_stub_inner(HttpResponse(500, body="boom")))
        svc(self._save_request({F_AUDIT: "1"}))
        assert svc.catalog.head_link("d") is None
