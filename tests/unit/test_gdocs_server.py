"""The simulated Google Documents server and its storage."""

import pytest

from repro.errors import ProtocolError, QuotaExceededError
from repro.net.channel import Channel
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer
from repro.services.gdocs.storage import (
    MAX_DOCUMENT_CHARS,
    DocumentStore,
)


class TestStore:
    def test_create_get(self):
        store = DocumentStore()
        store.create("d", "hello")
        assert store.get("d").content == "hello"
        assert "d" in store and len(store) == 1

    def test_duplicate_create(self):
        store = DocumentStore()
        store.create("d")
        with pytest.raises(ProtocolError):
            store.create("d")

    def test_missing_get(self):
        with pytest.raises(ProtocolError):
            DocumentStore().get("nope")

    def test_set_content_bumps_revision_and_history(self):
        store = DocumentStore()
        store.create("d", "v0")
        store.set_content("d", "v1")
        store.set_content("d", "v2")
        doc = store.get("d")
        assert doc.revision == 2
        assert doc.history == ["v0", "v1"]

    def test_apply_delta_is_structural(self):
        store = DocumentStore()
        store.create("d", "abcdefg")
        store.apply_delta("d", "=2\t-3\t+uv\t=2\t+w")
        assert store.get("d").content == "abuvfgw"

    def test_bad_delta(self):
        store = DocumentStore()
        store.create("d", "ab")
        with pytest.raises(ProtocolError):
            store.apply_delta("d", "=5\t-1")

    def test_quota(self):
        store = DocumentStore()
        store.create("d")
        with pytest.raises(QuotaExceededError):
            store.set_content("d", "x" * (MAX_DOCUMENT_CHARS + 1))

    def test_quota_via_delta(self):
        store = DocumentStore()
        store.create("d", "x" * MAX_DOCUMENT_CHARS)
        with pytest.raises(QuotaExceededError):
            store.apply_delta("d", "+y")


@pytest.fixture
def channel():
    return Channel(GDocsServer())


def open_session(channel, doc_id="doc"):
    resp = channel.send(protocol.open_request(doc_id))
    return resp.form[protocol.F_SID], int(resp.form[protocol.A_REV])


class TestServer:
    def test_open_creates_document(self, channel):
        sid, rev = open_session(channel)
        assert sid.startswith("s") and rev == 0

    def test_full_save_then_delta(self, channel):
        sid, rev = open_session(channel)
        resp = channel.send(
            protocol.full_save_request("doc", sid, rev, "hello world")
        )
        ack = protocol.Ack.from_response(resp)
        assert ack.content_from_server == "hello world"
        assert ack.content_from_server_hash == protocol.content_hash(
            "hello world"
        )
        resp = channel.send(
            protocol.delta_save_request("doc", sid, ack.rev, "=5\t+!")
        )
        ack = protocol.Ack.from_response(resp)
        # routine delta Acks carry only the hash (no content echo)
        assert ack.content_from_server == ""
        assert ack.content_from_server_hash == protocol.content_hash(
            "hello! world"
        )
        assert not ack.conflict

    def test_delta_before_full_save_rejected(self, channel):
        sid, rev = open_session(channel)
        resp = channel.send(
            protocol.delta_save_request("doc", sid, rev, "+x")
        )
        assert resp.status == 400

    def test_stale_revision_conflicts_without_applying(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request("doc", sid, rev, "base"))
        resp = channel.send(
            protocol.delta_save_request("doc", sid, 999, "+x")
        )
        ack = protocol.Ack.from_response(resp)
        assert ack.conflict
        assert ack.content_from_server == "base"

    def test_invalid_session(self, channel):
        resp = channel.send(
            protocol.full_save_request("doc", "bogus", 0, "x")
        )
        assert resp.status == 400

    def test_fetch(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request("doc", sid, rev, "body"))
        resp = channel.send(protocol.fetch_request("doc"))
        assert resp.body == "body"

    def test_missing_doc_id(self, channel):
        from repro.net.http import HttpRequest
        resp = channel.send(HttpRequest("POST", "http://h/Doc"))
        assert resp.status == 400

    def test_unknown_path(self, channel):
        from repro.net.http import HttpRequest
        resp = channel.send(HttpRequest("POST", "http://h/Nope?docID=d"))
        assert resp.status == 404

    def test_quota_reported_as_413(self, channel):
        sid, rev = open_session(channel)
        resp = channel.send(protocol.full_save_request(
            "doc", sid, rev, "x" * (MAX_DOCUMENT_CHARS + 1)
        ))
        assert resp.status == 413


class TestServerFeatures:
    def test_spellcheck_reads_stored_content(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request(
            "doc", sid, rev, "the quick zzyzx"
        ))
        resp = channel.send(protocol.feature_request("doc", "spellcheck"))
        assert "zzyzx" in resp.form["misspelled"]

    def test_translate(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request("doc", sid, rev, "ab cd"))
        resp = channel.send(protocol.feature_request("doc", "translate"))
        assert resp.body == "ba dc"

    def test_export(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request("doc", sid, rev, "body"))
        resp = channel.send(protocol.feature_request("doc", "export"))
        assert resp.body.startswith("{\\rtf1")
        assert "body" in resp.body

    def test_drawing(self, channel):
        sid, rev = open_session(channel)
        channel.send(protocol.full_save_request("doc", sid, rev, ""))
        resp = channel.send(protocol.feature_request(
            "doc", "drawing", primitives="line circle"
        ))
        assert resp.body.startswith("PNG[")

    def test_unknown_action(self, channel):
        sid, rev = open_session(channel)
        resp = channel.send(protocol.feature_request("doc", "mine-bitcoin"))
        assert resp.status == 400
