"""Wire format: fixed-width records and the document header."""

import os

import pytest

from repro.encoding.wire import (
    RECORD_BYTES,
    RECORD_CHARS,
    DocumentHeader,
    Record,
    decode_record,
    decode_records,
    encode_record,
    encode_records,
    looks_encrypted,
    parse_document,
    split_header,
)
from repro.errors import CiphertextFormatError


def _record(count=3):
    return Record(char_count=count, block=os.urandom(16))


class TestRecord:
    def test_fixed_width(self):
        assert RECORD_CHARS == 28  # 17 bytes, unpadded base32
        assert len(encode_record(_record())) == RECORD_CHARS

    def test_round_trip(self):
        rec = _record(7)
        assert decode_record(encode_record(rec)) == rec

    def test_zero_count_bookkeeping_record(self):
        rec = Record(char_count=0, block=bytes(16))
        assert decode_record(encode_record(rec)) == rec

    def test_bad_char_count(self):
        with pytest.raises(CiphertextFormatError):
            Record(char_count=-1, block=bytes(16))
        with pytest.raises(CiphertextFormatError):
            Record(char_count=256, block=bytes(16))

    def test_bad_block_length(self):
        with pytest.raises(CiphertextFormatError):
            Record(char_count=1, block=bytes(15))

    def test_decode_wrong_width(self):
        with pytest.raises(CiphertextFormatError):
            decode_record("A" * (RECORD_CHARS - 1))


class TestRecordArea:
    def test_many_round_trip(self):
        records = [_record(i % 9) for i in range(20)]
        area = encode_records(records)
        assert len(area) == 20 * RECORD_CHARS
        assert decode_records(area) == records

    def test_splice_is_exact(self):
        """Deleting record i from the text area yields the encoding of
        the record list without element i — the property cdeltas rely on."""
        records = [_record(i % 9) for i in range(5)]
        area = encode_records(records)
        spliced = area[: 2 * RECORD_CHARS] + area[3 * RECORD_CHARS :]
        assert decode_records(spliced) == records[:2] + records[3:]

    def test_ragged_area_rejected(self):
        with pytest.raises(CiphertextFormatError):
            decode_records("A" * (RECORD_CHARS + 1))

    def test_empty_area(self):
        assert decode_records("") == []


class TestHeader:
    def _header(self):
        return DocumentHeader(scheme="rpc", block_chars=8, nonce_bits=32,
                              salt=os.urandom(10))

    def test_round_trip(self):
        header = self._header()
        encoded = header.encode()
        parsed, rest = split_header(encoded + "RECORDS")
        assert parsed == header
        assert rest == "RECORDS"

    def test_wire_length(self):
        header = self._header()
        assert header.wire_length == len(header.encode())

    def test_parse_document(self):
        header = self._header()
        records = [_record(2), _record(0)]
        doc = header.encode() + encode_records(records)
        got_header, got_records = parse_document(doc)
        assert got_header == header
        assert got_records == records

    def test_looks_encrypted(self):
        assert looks_encrypted(self._header().encode())
        assert not looks_encrypted("Dear diary, ...")
        assert not looks_encrypted("")

    def test_missing_terminator(self):
        with pytest.raises(CiphertextFormatError):
            split_header("PE1-RECB-8-64-AAAA")

    def test_bad_magic(self):
        with pytest.raises(CiphertextFormatError):
            split_header("XX9-RECB-8-64-AAAA.")

    def test_bad_numbers(self):
        with pytest.raises(CiphertextFormatError):
            split_header("PE1-RECB-eight-64-AAAA.")

    def test_record_bytes_constant(self):
        assert RECORD_BYTES == 17
