"""Network substrate: messages, latency model, channel mediation."""

import pytest

from repro.errors import BlockedRequestError, ProtocolError
from repro.net.channel import Channel
from repro.net.http import HttpRequest, HttpResponse, parse_url
from repro.net.latency import INSTANT, LAN, WAN_2011, LatencyModel, SimClock


class TestHttp:
    def test_parse_url(self):
        host, path, params = parse_url(
            "http://docs.google.com/Doc?docID=abc&x=1"
        )
        assert host == "docs.google.com"
        assert path == "/Doc"
        assert params == {"docID": "abc", "x": "1"}

    def test_parse_url_no_query(self):
        assert parse_url("http://h/p") == ("h", "/p", {})

    def test_parse_url_bare_host(self):
        assert parse_url("http://h") == ("h", "/", {})

    def test_bad_scheme(self):
        with pytest.raises(ProtocolError):
            parse_url("ftp://host/x")

    def test_request_form_round_trip(self):
        req = HttpRequest("POST", "http://h/p").with_form(
            {"a": "x y", "b": "&="}
        )
        assert req.form == {"a": "x y", "b": "&="}

    def test_wire_bytes_grows_with_body(self):
        small = HttpRequest("POST", "http://h/p", body="x")
        big = HttpRequest("POST", "http://h/p", body="x" * 1000)
        assert big.wire_bytes > small.wire_bytes

    def test_response_ok(self):
        assert HttpResponse(200).ok
        assert HttpResponse(204).ok
        assert not HttpResponse(404).ok


class TestLatency:
    def test_clock_advances(self):
        clock = SimClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_instant_model_is_zero(self):
        assert INSTANT().request_latency(100, 100) == 0.0

    def test_wan_slower_than_lan(self):
        wan = sum(WAN_2011(0).request_latency(500, 500) for _ in range(20))
        lan = sum(LAN(0).request_latency(500, 500) for _ in range(20))
        assert wan > lan * 5

    def test_latency_positive(self):
        model = WAN_2011(1)
        assert all(
            model.request_latency(100, 100) > 0 for _ in range(100)
        )

    def test_transfer_term(self):
        model = LatencyModel(rtt_mean=0, rtt_jitter=0, server_mean=0,
                             server_jitter=0, bytes_per_second=1000)
        assert model.request_latency(500, 500) == pytest.approx(1.0)


def _echo_server(request: HttpRequest) -> HttpResponse:
    return HttpResponse(200, request.body)


class TestChannel:
    def test_basic_exchange(self):
        ch = Channel(_echo_server)
        resp = ch.send(HttpRequest("POST", "http://h/p", body="ping"))
        assert resp.body == "ping"
        assert len(ch.exchange_log) == 1

    def test_clock_advances_per_exchange(self):
        ch = Channel(_echo_server, latency=WAN_2011(0))
        before = ch.clock.now()
        ch.send(HttpRequest("GET", "http://h/p"))
        assert ch.clock.now() > before

    def test_mediator_rewrites(self):
        class Med:
            def on_request(self, request):
                return request.with_body("MEDIATED")

            def on_response(self, request, response):
                return response.with_body(response.body + "+BACK")

        ch = Channel(_echo_server)
        ch.set_mediator(Med())
        resp = ch.send(HttpRequest("POST", "http://h/p", body="orig"))
        assert resp.body == "MEDIATED+BACK"

    def test_mediator_drop_raises_and_logs(self):
        class DropAll:
            def on_request(self, request):
                return None

            def on_response(self, request, response):
                return response

        ch = Channel(_echo_server)
        ch.set_mediator(DropAll())
        with pytest.raises(BlockedRequestError):
            ch.send(HttpRequest("POST", "http://h/p", body="x"))
        assert len(ch.blocked_log) == 1
        assert ch.exchange_log == []

    def test_tap_sees_post_mediation_traffic(self):
        class Med:
            def on_request(self, request):
                return request.with_body("CIPHERTEXT")

            def on_response(self, request, response):
                return response.with_body("PLAINTEXT")

        seen = []
        ch = Channel(_echo_server)
        ch.set_mediator(Med())
        ch.add_tap(seen.append)
        ch.send(HttpRequest("POST", "http://h/p", body="SECRET"))
        [exchange] = seen
        assert exchange.request.body == "CIPHERTEXT"
        assert exchange.response.body == "CIPHERTEXT"  # pre-unmediation

    def test_tamperer_mutates(self):
        ch = Channel(_echo_server)
        ch.set_tamperers(
            on_request=lambda r: r.with_body("EVIL"),
        )
        resp = ch.send(HttpRequest("POST", "http://h/p", body="good"))
        assert resp.body == "EVIL"


class TestChannelRingBuffer:
    def test_max_log_caps_exchange_log(self):
        ch = Channel(_echo_server, max_log=3)
        for i in range(7):
            ch.send(HttpRequest("POST", "http://h/p", body=str(i)))
        assert len(ch.exchange_log) == 3
        assert [ex.request.body for ex in ch.exchange_log] == ["4", "5", "6"]

    def test_max_log_caps_blocked_log(self):
        class DropAll:
            def on_request(self, request):
                return None

            def on_response(self, request, response):
                return response

        ch = Channel(_echo_server, max_log=2)
        ch.set_mediator(DropAll())
        for i in range(5):
            with pytest.raises(BlockedRequestError):
                ch.send(HttpRequest("POST", "http://h/p", body=str(i)))
        assert [r.body for r in ch.blocked_log] == ["3", "4"]

    def test_max_log_does_not_affect_aggregates(self):
        from repro.obs import capture

        ch = Channel(_echo_server, max_log=1)
        with capture() as cap:
            for _ in range(6):
                ch.send(HttpRequest("POST", "http://h/p", body="x"))
        assert len(ch.exchange_log) == 1
        assert cap["net.exchanges"] == 6
        assert cap["net.latency_seconds"] == 6

    def test_invalid_max_log_rejected(self):
        with pytest.raises(ValueError):
            Channel(_echo_server, max_log=0)


class TestUrlParseCache:
    def test_host_path_query_parse_once(self):
        from repro.obs import capture

        req = HttpRequest("GET", "http://docs.google.com/Doc?docID=abc&x=1")
        with capture() as cap:
            assert req.host == "docs.google.com"
            assert req.path == "/Doc"
            assert req.query == {"docID": "abc", "x": "1"}
            assert req.query["docID"] == "abc"
        assert cap["net.url_parses"] == 1
        assert cap["net.url_cache_hits"] == 3

    def test_cached_query_is_a_copy(self):
        req = HttpRequest("GET", "http://h/p?a=1")
        req.query["a"] = "poisoned"
        assert req.query == {"a": "1"}


class TestChannelWithFaults:
    """The faults hook point: ordering against mediator and tamperers."""

    def test_faults_see_post_tamperer_request(self):
        from repro.net.faults import FaultPlan

        plan = FaultPlan([])
        ch = Channel(_echo_server, faults=plan)
        ch.set_tamperers(on_request=lambda r: r.with_body("TAMPERED"))
        ch.send(HttpRequest("POST", "http://h/p", body="original"))
        assert [r.body for r in plan.observed] == ["TAMPERED"]

    def test_lost_exchange_is_not_logged(self):
        from repro.errors import NetworkTimeoutError
        from repro.net.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(kind="drop", at=(0,))])
        ch = Channel(_echo_server, faults=plan)
        with pytest.raises(NetworkTimeoutError):
            ch.send(HttpRequest("POST", "http://h/p", body="x"))
        assert len(ch.exchange_log) == 0   # nothing completed on the wire
        assert len(plan.observed) == 1     # but an adversary saw it leave

    def test_fault_timeout_advances_channel_clock(self):
        from repro.errors import NetworkTimeoutError
        from repro.net.faults import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(kind="drop", at=(0,))],
                         timeout_seconds=1.5)
        ch = Channel(_echo_server, faults=plan)
        with pytest.raises(NetworkTimeoutError):
            ch.send(HttpRequest("POST", "http://h/p", body="x"))
        assert ch.clock.now() == 1.5

    def test_mediator_drop_preempts_faults(self):
        from repro.net.faults import FaultPlan, FaultSpec

        class DropAll:
            def on_request(self, request):
                return None

            def on_response(self, request, response):
                return response

        plan = FaultPlan([FaultSpec(kind="dup", rate=1.0)])
        ch = Channel(_echo_server, faults=plan)
        ch.set_mediator(DropAll())
        with pytest.raises(BlockedRequestError):
            ch.send(HttpRequest("POST", "http://h/p", body="x"))
        assert plan.observed == []         # fail-closed: never on the wire
