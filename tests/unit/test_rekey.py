"""Key rotation: rekey() replaces everything under a new password."""

import pytest

from repro.core import KeyMaterial, create_document, load_document
from repro.crypto.random import DeterministicRandomSource
from repro.errors import DecryptionError, ReproError


@pytest.fixture(params=["recb", "rpc"])
def doc(request, nonce_rng):
    return create_document(
        "rotate my key please",
        password="old password",
        scheme=request.param,
        rng=nonce_rng,
    )


class TestRekey:
    def test_new_password_opens(self, doc):
        doc.rekey(password="new password")
        reloaded = load_document(doc.wire(), password="new password")
        assert reloaded.text == "rotate my key please"

    def test_old_password_fails(self, doc):
        doc.rekey(password="new password")
        with pytest.raises(ReproError):
            load_document(doc.wire(), password="old password")

    def test_cdelta_tracks_server(self, doc):
        server = doc.wire()
        cdelta = doc.rekey(password="new password")
        server = cdelta.apply(server)
        assert server == doc.wire()

    def test_salt_changes(self, doc):
        old_salt = doc.key_material.salt
        doc.rekey(password="new password")
        assert doc.key_material.salt != old_salt

    def test_ciphertext_fully_changes(self, doc):
        from repro.encoding.wire import RECORD_CHARS, split_header
        _, before = split_header(doc.wire())
        doc.rekey(password="new password")
        _, after = split_header(doc.wire())
        before_records = {
            before[i:i + RECORD_CHARS]
            for i in range(0, len(before), RECORD_CHARS)
        }
        after_records = {
            after[i:i + RECORD_CHARS]
            for i in range(0, len(after), RECORD_CHARS)
        }
        assert not before_records & after_records

    def test_editing_continues_after_rekey(self, doc):
        server = doc.wire()
        server = doc.rekey(password="new password").apply(server)
        server = doc.insert(0, "fresh: ").apply(server)
        assert server == doc.wire()
        assert load_document(server, password="new password").text \
            == "fresh: rotate my key please"

    def test_rekey_with_key_material(self, doc, nonce_rng):
        keys = KeyMaterial.from_password("alt", rng=nonce_rng)
        doc.rekey(key_material=keys)
        assert load_document(doc.wire(), key_material=keys).text \
            == "rotate my key please"

    def test_rpc_version_continues(self, nonce_rng):
        from repro.core.document import RpcDocument
        doc = RpcDocument.create("v", password="old", rng=nonce_rng)
        doc.insert(0, "a")
        doc.insert(0, "b")
        assert doc.version == 2
        doc.rekey(password="new")
        assert doc.version == 3  # monotonic across rotation
