"""Refusal paths: the document store's quota/lookup guards and the
frame server's error dispatch.

The paper's SV-C analysis leans on Google's 500 kB quota — ciphertext
blow-up matters precisely because the server *refuses* oversized
content — so the refusal must be atomic (document unchanged, revision
unmoved).  The frame server's guarantee is that no bad frame crashes
the loop: every error branch answers a frame (or a 500 response), it
never raises.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ProtocolError, QuotaExceededError
from repro.net.server import ReproServer
from repro.net.transport import OP_VIEW, decode_response_frame
from repro.services.gdocs.storage import (
    MAX_DOCUMENT_CHARS,
    DocumentStore,
)


class TestDocumentStoreRefusals:
    def test_full_save_over_quota_is_refused_atomically(self):
        store = DocumentStore()
        store.create("d", "before")
        doc = store.get("d")
        rev = doc.revision
        with pytest.raises(QuotaExceededError):
            store.set_content("d", "x" * (MAX_DOCUMENT_CHARS + 1))
        assert doc.content == "before"
        assert doc.revision == rev
        assert list(doc.history) == []

    def test_full_save_at_exact_quota_is_accepted(self):
        store = DocumentStore()
        store.create("d")
        store.set_content("d", "x" * MAX_DOCUMENT_CHARS)
        assert store.get("d").length == MAX_DOCUMENT_CHARS

    def test_delta_over_quota_is_refused_atomically(self):
        store = DocumentStore()
        big = "x" * (MAX_DOCUMENT_CHARS - 1)
        store.create("d", big)
        doc = store.get("d")
        with pytest.raises(QuotaExceededError):
            store.apply_delta("d", f"={len(big)}\t+padpad")
        assert doc.length == len(big)
        assert doc.revision == 0
        # ...and the document still takes a fitting delta afterwards
        store.apply_delta("d", f"={len(big)}\t+!")
        assert doc.length == MAX_DOCUMENT_CHARS

    def test_duplicate_create_is_refused(self):
        store = DocumentStore()
        store.create("d")
        with pytest.raises(ProtocolError, match="already exists"):
            store.create("d")

    def test_missing_document_is_refused(self):
        store = DocumentStore()
        with pytest.raises(ProtocolError, match="no document"):
            store.get("ghost")
        with pytest.raises(ProtocolError, match="no document"):
            store.set_content("ghost", "x")

    def test_ill_fitting_delta_is_a_protocol_error(self):
        store = DocumentStore()
        store.create("d", "short")
        with pytest.raises(ProtocolError, match="does not fit"):
            store.apply_delta("d", "=999\t+x")
        assert store.get("d").content == "short"


@pytest.fixture()
def server():
    srv = ReproServer(shards=2)
    yield srv
    srv.shutdown()


def _dispatch(server: ReproServer, fields: dict) -> dict:
    return asyncio.run(server._dispatch(fields))


def _raiser(request):
    raise RuntimeError("backend on fire")


class TestFrameServerErrorBranches:
    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            ReproServer(shards=0)

    def test_unknown_service_answers_an_error_field(self, server):
        reply = _dispatch(server, {"id": "7", "op": "ping",
                                   "svc": "dropbox"})
        assert reply["id"] == "7"
        assert "unknown service" in reply["e"]

    def test_unknown_op_answers_an_error_field(self, server):
        reply = _dispatch(server, {"id": "8", "op": "teleport",
                                   "svc": "gdocs"})
        assert "unknown op" in reply["e"]

    def test_http_frame_without_request_answers_an_error_field(self, server):
        reply = _dispatch(server, {"id": "9", "op": "http",
                                   "svc": "gdocs", "tn": "t"})
        assert "e" in reply

    def test_view_of_a_missing_document_answers_empty(self, server):
        reply = _dispatch(server, {"id": "1", "op": OP_VIEW,
                                   "svc": "gdocs", "tn": "t",
                                   "doc": "ghost"})
        response = decode_response_frame(reply)
        assert response.status == 200
        assert response.body == ""

    def test_backend_crash_on_view_answers_500(self, server, monkeypatch):
        """A backend exception must become a response frame, never
        escape into (and kill) the event loop."""
        from repro.services import registry

        def exploding(service, inst, doc_id):
            raise RuntimeError("shard on fire")

        monkeypatch.setattr(registry, "server_view", exploding)
        reply = _dispatch(server, {"id": "1", "op": OP_VIEW,
                                   "svc": "gdocs", "tn": "t",
                                   "doc": "d"})
        response = decode_response_frame(reply)
        assert response.status == 500
        assert "view failed" in response.body

    def test_backend_crash_on_http_answers_500(self, server, monkeypatch):
        from repro.services import registry

        class ExplodingBackend:
            capabilities = registry.backend_for("gdocs").capabilities

            def doc_id_of(self, request):
                return "d"

        monkeypatch.setattr(registry, "backend_for",
                            lambda service: ExplodingBackend())
        monkeypatch.setattr(
            registry, "make_server",
            lambda service, **kw: _raiser)
        reply = _dispatch(server, {
            "id": "2", "op": "http", "svc": "gdocs", "tn": "fresh",
            "m": "POST", "u": "http://h/Edit?docID=d", "b": "x"})
        response = decode_response_frame(reply)
        assert response.status == 500
        assert "server error" in response.body

    def test_tenants_get_separate_instances_lazily(self, server):
        assert server.instance_count == 0
        _dispatch(server, {"id": "1", "op": OP_VIEW, "svc": "gdocs",
                           "tn": "a", "doc": "ghost"})
        _dispatch(server, {"id": "2", "op": OP_VIEW, "svc": "gdocs",
                           "tn": "b", "doc": "ghost"})
        assert server.instance_count == 2
