"""repro.obs: instruments, registry, capture, and the sidecar schema."""

import json

import pytest

from repro import obs
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    capture,
    set_enabled,
    value_of,
)
from repro.obs.export import (
    SCHEMA_ID,
    load_sidecar,
    render_json_text,
    render_text,
    to_json,
    validate_metrics,
    write_sidecar,
)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = Registry("t")
        a = reg.counter("x.calls")
        b = reg.counter("x.calls")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_kind_conflict_raises(self):
        reg = Registry("t")
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_names_sorted_and_get(self):
        reg = Registry("t")
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert isinstance(reg.get("a"), Counter)
        assert reg.get("missing") is None

    def test_snapshot_and_reset(self):
        reg = Registry("t")
        reg.counter("c").inc(5)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == {"c": 5, "g": 2.5, "h": 1}
        reg.reset()
        assert reg.snapshot() == {"c": 0, "g": 0.0, "h": 0}
        assert reg.names() == ["c", "g", "h"]  # names survive reset

    def test_scope_prefixes_names(self):
        reg = Registry("t")
        scope = reg.scope("net")
        scope.counter("exchanges").inc()
        nested = scope.scope("http")
        nested.counter("parses").inc(2)
        assert value_of("net.exchanges", reg) == 1
        assert value_of("net.http.parses", reg) == 2

    def test_timer_observes_into_histogram(self):
        reg = Registry("t")
        with reg.timer("op_seconds").time():
            pass
        hist = reg.get("op_seconds")
        assert hist.count == 1
        assert hist.min >= 0.0


class TestHistogram:
    def test_percentiles_on_known_dataset(self):
        hist = Histogram("h")
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.min == 1.0
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(50.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == 51.0  # nearest rank over 0..99
        assert hist.percentile(100) == 100.0
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_ring_bounds_retained_samples(self):
        hist = Histogram("h", max_samples=4)
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            hist.observe(v)
        # exact aggregates see everything...
        assert hist.count == 5
        assert hist.max == 100.0
        # ...while percentiles come from the 4 most recent samples
        assert hist.percentile(0) == 2.0

    def test_empty_summary_is_zeroed(self):
        assert Histogram("h").summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }


class TestEnabledFlag:
    def test_disabled_stops_all_recording(self):
        reg = Registry("t")
        prev = set_enabled(False)
        try:
            reg.counter("c").inc(10)
            reg.gauge("g").set(5)
            reg.histogram("h").observe(1.0)
        finally:
            set_enabled(prev)
        assert reg.snapshot() == {"c": 0, "g": 0.0, "h": 0}

    def test_set_enabled_returns_previous(self):
        assert set_enabled(True) is True
        assert obs.is_enabled()


class TestCapture:
    def test_capture_diffs_only_the_block(self):
        reg = Registry("t")
        reg.counter("c").inc(100)  # pre-existing load must not leak in
        with capture(reg) as cap:
            reg.counter("c").inc(7)
            reg.histogram("h").observe(1.0)
        assert cap["c"] == 7
        assert cap["h"] == 1  # histogram deltas are observation counts
        assert cap["never-touched"] == 0
        assert cap.nonzero() == {"c": 7, "h": 1}

    def test_capture_on_default_registry(self):
        name = "test_obs.capture_probe"
        with capture() as cap:
            obs.counter(name).inc(2)
        assert cap[name] == 2


class TestExport:
    def _loaded_registry(self):
        reg = Registry("t")
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        return reg

    def test_round_trip_validates_and_renders(self):
        reg = self._loaded_registry()
        obj = to_json(reg)
        validate_metrics(obj)  # no raise
        # survives a real JSON encode/decode
        validate_metrics(json.loads(json.dumps(obj)))
        text = render_json_text(obj, title="t")
        assert "c" in text and "count=1" in text
        assert render_text(reg) == render_json_text(to_json(reg))

    def test_sidecar_write_load(self, tmp_path):
        reg = self._loaded_registry()
        path = tmp_path / "metrics.json"
        written = write_sidecar(str(path), reg)
        loaded = load_sidecar(str(path))
        assert loaded == written
        assert loaded["schema"] == SCHEMA_ID
        assert loaded["counters"] == {"c": 3}
        assert loaded["histograms"]["h"]["count"] == 1

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda o: o.update(schema="bogus/v9"), "unknown schema"),
        (lambda o: o.pop("counters"), "'counters' must be an object"),
        (lambda o: o["counters"].update(c=-1), "non-negative"),
        (lambda o: o["counters"].update(c=True), "non-negative"),
        (lambda o: o["gauges"].update(g="high"), "must be a number"),
        (lambda o: o["histograms"]["h"].pop("p99"), "p99 must be a number"),
    ])
    def test_validate_rejects_malformed(self, mutate, fragment):
        obj = to_json(self._loaded_registry())
        mutate(obj)
        with pytest.raises(ValueError, match=fragment):
            validate_metrics(obj)

    def test_empty_registry_renders_placeholder(self):
        assert render_text(Registry("empty")) == "(no metrics recorded)"
