"""Piece-table store: string equivalence, atomicity, history cap.

The gdocs server now stores each document as a
:class:`~repro.services.gdocs.pieces.PieceTable` and applies deltas by
splicing pieces instead of rebuilding the content string.  These tests
pin the two load-bearing claims: (1) the piece-table apply path is
*observationally identical* to ``Delta.apply`` on a plain string, under
arbitrary random edit histories and across flattens; (2) the
:class:`StoredDocument` history cap compacts old revisions without
perturbing anything a client (or adversary) can still reach.
"""

import random

import pytest

from repro.core.delta import Delta
from repro.errors import DeltaApplicationError, QuotaExceededError
from repro.services.gdocs.pieces import PieceTable
from repro.services.gdocs.storage import (
    MAX_DOCUMENT_CHARS,
    DocumentStore,
    StoredDocument,
)


def random_delta(rng, length):
    """A small random replacement delta valid for a ``length``-char doc."""
    pos = rng.randrange(length + 1)
    ndel = min(rng.randrange(0, 6), length - pos)
    ins = "".join(rng.choice("xyzw \t%") for _ in range(rng.randrange(0, 6)))
    ops = []
    if pos:
        ops.append(f"={pos}")
    if ndel:
        ops.append(f"-{ndel}")
    if ins:
        ops.append("+" + ins.replace("%", "%25").replace("\t", "%09"))
    return Delta.parse("\t".join(ops))


class TestPieceTableEquivalence:
    # 1500 chars stays on the flat small-document path; 20000 exceeds
    # SMALL_DOC_CHARS and exercises the real piece-splicing walk
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("size,flatten_at,rounds", [
        (1_500, 512, 300), (20_000, 4, 120), (20_000, 512, 120),
    ])
    def test_random_histories_match_string_apply(self, seed, size,
                                                 flatten_at, rounds):
        rng = random.Random(seed)
        text = "".join(rng.choice("abcdef \n") for _ in range(size))
        table = PieceTable(text, flatten_at=flatten_at)
        for _ in range(rounds):
            delta = random_delta(rng, len(text))
            text = delta.apply(text)
            delta.apply(table)  # duck-typed piece-table target
            assert table.length == len(text)
        assert table.materialize() == text
        assert table.piece_count <= flatten_at + 1

    @pytest.mark.parametrize("size", [11, 20_000])
    def test_failed_delta_leaves_table_unchanged(self, size):
        text = "hello world" * (size // 11)
        table = PieceTable(text)
        with pytest.raises(DeltaApplicationError):
            Delta.parse(f"={len(text) - 5}\t-99").apply(table)
        assert table.materialize() == text
        assert table.length == len(text)

    def test_snapshots_survive_later_edits_and_flattens(self):
        table = PieceTable("hello", flatten_at=2)
        snapshots = [table.snapshot()]
        for i in range(10):
            Delta.parse(f"+{i}").apply(table)
            snapshots.append(table.snapshot())
        assert snapshots[0].materialize() == "hello"
        assert snapshots[3].materialize() == "210hello"
        assert snapshots[-1].materialize() == table.materialize()

    def test_snapshots_on_the_piece_path(self):
        rng = random.Random(9)
        text = "abcdefgh" * 3000  # 24k chars: piece path
        table = PieceTable(text, flatten_at=8)
        expect = [text]
        snapshots = [table.snapshot()]
        for _ in range(40):
            delta = random_delta(rng, len(text))
            text = delta.apply(text)
            delta.apply(table)
            expect.append(text)
            snapshots.append(table.snapshot())
        for want, snap in zip(expect, snapshots):
            assert snap.materialize() == want


class TestHistoryCap:
    def test_old_revisions_are_compacted(self):
        doc = StoredDocument("d", max_history=5)
        for i in range(12):
            doc.apply_delta(f"+{i}")
        assert doc.revision == 12
        assert len(doc.history) == 5
        assert doc.history_floor == 7

    def test_deltas_since_returns_none_below_the_floor(self):
        doc = StoredDocument("d", max_history=5)
        for i in range(12):
            doc.apply_delta(f"+{i}")
        assert doc.deltas_since(6) is None  # compacted away
        assert doc.deltas_since(doc.history_floor) == \
            ["+7", "+8", "+9", "+10", "+11"]
        assert doc.deltas_since(10) == ["+10", "+11"]
        assert doc.deltas_since(12) == []

    def test_full_save_still_breaks_the_delta_chain(self):
        doc = StoredDocument("d", max_history=100)
        doc.apply_delta("+a")
        doc._commit("fresh")
        doc.apply_delta("+b")
        assert doc.deltas_since(0) is None  # full save in the window
        assert doc.deltas_since(2) == ["+b"]

    def test_history_entries_materialize_like_the_old_strings(self):
        doc = StoredDocument("d")
        doc._commit("v0")
        doc._commit("v1")
        assert doc.history == ["", "v0"]
        assert doc.history[-1] == "v0"
        assert list(doc.history) == ["", "v0"]
        assert doc.content == "v1"


class TestQuotaAtomicity:
    def test_over_quota_delta_rolls_back_completely(self):
        store = DocumentStore()
        store.create("d", "x" * (MAX_DOCUMENT_CHARS - 2))
        store.apply_delta("d", "+ab")  # lands exactly on the limit
        doc = store.get("d")
        with pytest.raises(QuotaExceededError, match="would be 500001"):
            store.apply_delta("d", "+y")
        assert doc.length == MAX_DOCUMENT_CHARS
        assert doc.revision == 1
        assert doc.content.startswith("ab")
