"""Unit tests for the server-side OT merge engine (repro.services.ot).

The property suite (tests/property/test_prop_ot.py) pins the algebra
over arbitrary deltas; these tests pin the concrete contract the
merging server and the extension lean on: the rebase/patch duality on
worked examples, history-wins tie-breaking, wire-string history
entries, the grid-alignment gate, and the obs counters.
"""

from __future__ import annotations

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.obs import capture
from repro.services import ot


BASE = "HEAD abcdef"


class TestRebase:
    def test_empty_history_is_identity(self):
        incoming = Delta((Retain(4), Insert("XX")))
        merge = ot.rebase(incoming, [])
        assert merge.rebased is incoming
        assert merge.patch.apply("anything") == "anything"
        assert merge.depth == 0

    def test_rebase_patch_duality_single(self):
        # saver edits at 4, history appended at the end first
        incoming = Delta((Retain(4), Insert("XX")))
        committed = Delta((Retain(len(BASE)), Insert("TAIL")))
        merge = ot.rebase(incoming, [committed])
        head = committed.apply(BASE)            # server state at save
        merged = merge.rebased.apply(head)      # what the store commits
        saver = incoming.apply(BASE)            # saver's post-save text
        assert merge.patch.apply(saver) == merged
        assert merge.depth == 1

    def test_rebase_patch_duality_deep(self):
        incoming = Delta((Retain(5), Insert("mine "),))
        history = [
            Delta((Insert("1"),)),
            Delta((Retain(3), Delete(2), Insert("22"))),
            Delta((Retain(8), Insert("333"))),
        ]
        head = BASE
        for committed in history:
            head = committed.apply(head)
        merge = ot.rebase(incoming, history)
        assert merge.depth == 3
        assert (merge.patch.apply(incoming.apply(BASE))
                == merge.rebased.apply(head))

    def test_history_wins_insert_position_ties(self):
        incoming = Delta((Retain(4), Insert("ME")))
        committed = Delta((Retain(4), Insert("HIST")))
        merge = ot.rebase(incoming, [committed])
        merged = merge.rebased.apply(committed.apply(BASE))
        assert merged == "HEADHISTME abcdef"

    def test_history_entries_may_be_wire_strings(self):
        committed = Delta((Retain(len(BASE)), Insert("TAIL")))
        incoming = Delta((Retain(4), Insert("XX")))
        by_obj = ot.rebase(incoming, [committed])
        by_wire = ot.rebase(incoming, [committed.serialize()])
        assert by_wire.rebased.serialize() == by_obj.rebased.serialize()
        assert by_wire.patch.serialize() == by_obj.patch.serialize()


class TestGridAligned:
    OFFSET, STEP = 10, 4

    def aligned(self, delta):
        return ot.grid_aligned(delta, self.OFFSET, self.STEP)

    def test_whole_record_edits_on_grid_pass(self):
        assert self.aligned(Delta((Retain(10), Insert("AAAA")))) is True
        assert self.aligned(Delta((Retain(14), Delete(8)))) is True
        assert self.aligned(Delta((Retain(30),))) is True  # retain-only

    def test_partial_record_insert_fails(self):
        assert self.aligned(Delta((Retain(10), Insert("AAA")))) is False

    def test_off_grid_position_fails(self):
        assert self.aligned(Delta((Retain(12), Insert("AAAA")))) is False

    def test_edit_inside_the_header_fails(self):
        # position 4 is before offset 10 — header bytes are off-limits
        assert self.aligned(Delta((Retain(4), Insert("AAAA")))) is False
        assert self.aligned(Delta((Delete(4),))) is False

    def test_partial_record_delete_fails(self):
        assert self.aligned(Delta((Retain(10), Delete(3)))) is False

    def test_nonpositive_step_is_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            ot.grid_aligned(Delta(()), 0, 0)


class TestCounters:
    def test_rebase_counts_merges_and_algebra(self):
        incoming = Delta((Retain(4), Insert("XX")))
        history = [Delta((Retain(len(BASE)), Insert("TAIL")))] * 2
        with capture() as cap:
            ot.rebase(incoming, history)
            ot.reject()
        assert cap["services.ot.merges"] == 1
        assert cap["services.ot.rejects"] == 1
        # one transform pair per history entry
        assert cap["services.ot.transforms"] == 4
        assert cap["services.ot.composes"] == 2
