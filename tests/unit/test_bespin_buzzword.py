"""Bespin and Buzzword: servers, clients, and their extensions."""

import pytest

from repro.client.bespin_client import BespinClient
from repro.client.buzzword_client import BuzzwordClient
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.errors import BlockedRequestError
from repro.extension.bespin_ext import BespinExtension
from repro.extension.buzzword_ext import BuzzwordExtension
from repro.extension.passwords import PasswordVault
from repro.net.channel import Channel
from repro.net.http import HttpRequest
from repro.services import bespin, buzzword
from repro.services.bespin import BespinServer
from repro.services.buzzword import BuzzwordServer


class TestBespinServer:
    def test_put_get_round_trip(self):
        server = BespinServer()
        ch = Channel(server)
        ch.send(bespin.put_request("proj/main.py", "print('hi')"))
        resp = ch.send(bespin.get_request("proj/main.py"))
        assert resp.body == "print('hi')"

    def test_missing_file(self):
        ch = Channel(BespinServer())
        assert ch.send(bespin.get_request("nope")).status == 404

    def test_listing(self):
        server = BespinServer()
        ch = Channel(server)
        ch.send(bespin.put_request("p/a.py", "1"))
        ch.send(bespin.put_request("p/b.py", "2"))
        resp = ch.send(HttpRequest("GET", f"http://{bespin.HOST}/file/list/p/"))
        assert resp.form["files"] == "p/a.py\np/b.py"

    def test_delete(self):
        server = BespinServer()
        ch = Channel(server)
        ch.send(bespin.put_request("p/a.py", "1"))
        ch.send(HttpRequest("DELETE", bespin.file_url("p/a.py")))
        assert ch.send(bespin.get_request("p/a.py")).status == 404


class TestBespinPrivateEditing:
    def _stack(self):
        server = BespinServer()
        ch = Channel(server)
        vault = PasswordVault({"proj/secret.py": "pw"})
        ext = BespinExtension(vault, rng=DeterministicRandomSource(1))
        ch.set_mediator(ext)
        return server, ch

    def test_server_sees_only_ciphertext(self):
        server, ch = self._stack()
        client = BespinClient(ch, "proj/secret.py")
        client.open()
        client.editor.insert(0, "API_KEY = 'hunter2'")
        client.save()
        stored = server.files["proj/secret.py"]
        assert looks_encrypted(stored)
        assert "hunter2" not in stored

    def test_round_trip_through_extension(self):
        server, ch = self._stack()
        client = BespinClient(ch, "proj/secret.py")
        client.open()
        client.editor.insert(0, "x = 1")
        client.save()
        # a second client (same vault/extension) reads it back decrypted
        client2 = BespinClient(ch, "proj/secret.py")
        assert client2.open() == "x = 1"

    def test_unknown_requests_blocked(self):
        _, ch = self._stack()
        with pytest.raises(BlockedRequestError):
            ch.send(HttpRequest("POST", f"http://{bespin.HOST}/admin"))


class TestBuzzwordXml:
    def test_escape_round_trip(self):
        text = "a < b & c > d"
        assert buzzword.xml_unescape(buzzword.xml_escape(text)) == text

    def test_document_xml_and_text_runs(self):
        xml = buzzword.document_xml(["para one", "two & three"])
        assert buzzword.text_runs(xml) == ["para one", "two & three"]

    def test_map_text_runs_preserves_structure(self):
        xml = buzzword.document_xml(["a", "b"])
        mapped = buzzword.map_text_runs(xml, str.upper)
        assert buzzword.text_runs(mapped) == ["A", "B"]
        assert mapped.count("<p>") == 2


class TestBuzzwordServer:
    def test_post_get(self):
        ch = Channel(BuzzwordServer())
        xml = buzzword.document_xml(["hello"])
        ch.send(buzzword.post_request("d1", xml))
        assert ch.send(buzzword.get_request("d1")).body == xml

    def test_wordcount_feature(self):
        ch = Channel(BuzzwordServer())
        ch.send(buzzword.post_request(
            "d1", buzzword.document_xml(["three words here", "and more"])
        ))
        resp = ch.send(buzzword.get_request("d1/wordcount"))
        assert resp.form["words"] == "5"


class TestBuzzwordPrivateEditing:
    def _stack(self):
        server = BuzzwordServer()
        ch = Channel(server)
        vault = PasswordVault({"d1": "pw"})
        ext = BuzzwordExtension(vault, rng=DeterministicRandomSource(2))
        ch.set_mediator(ext)
        return server, ch

    def test_text_runs_encrypted_structure_visible(self):
        server, ch = self._stack()
        client = BuzzwordClient(ch, "d1")
        client.paragraphs = ["top secret paragraph", "another one"]
        client.save()
        stored = server.documents["d1"]
        assert "<doc>" in stored and stored.count("<textRun>") == 2
        assert "secret" not in stored
        for run in buzzword.text_runs(stored):
            assert looks_encrypted(run)

    def test_round_trip(self):
        server, ch = self._stack()
        client = BuzzwordClient(ch, "d1")
        client.paragraphs = ["alpha", "beta & <gamma>"]
        client.save()
        client2 = BuzzwordClient(ch, "d1")
        assert client2.open() == ["alpha", "beta & <gamma>"]

    def test_wordcount_blocked_under_extension(self):
        _, ch = self._stack()
        with pytest.raises(BlockedRequestError):
            ch.send(buzzword.get_request("d1/wordcount"))
