"""The asyncio socket server: routing, sharding, tenancy, bad frames.

``repro.net.server.ReproServer`` hosts the registry's simulated
providers behind TCP.  These tests exercise the server through the real
client machinery (:class:`ConnectionPool` + the frame codec) on a
background :class:`ServerThread` — no mocked sockets — and pin the
routing contract: tenants never see each other's documents, documents
hash onto stable shards, malformed frames answer with an error frame
(or, when framing itself is lost, a dropped connection) instead of
taking the server down.
"""

from __future__ import annotations

import socket as socketlib

import pytest

from repro.errors import NetworkTimeoutError, ProtocolError
from repro.net.pool import ConnectionPool
from repro.net.server import ReproServer, ServerThread
from repro.net.transport import (
    AsyncioSocketTransport,
    decode_response_frame,
)


@pytest.fixture(scope="module")
def served():
    with ServerThread(shards=4) as (host, port):
        yield host, port


@pytest.fixture()
def pool(served):
    host, port = served
    p = ConnectionPool(host, port, size=2, window=8, timeout=5.0)
    yield p
    p.close()


def _save_via(transport: AsyncioSocketTransport, doc: str,
              text: str) -> None:
    from repro.extension.session import PrivateEditingSession

    session = PrivateEditingSession(doc, "pw", transport=transport,
                                    service=transport.service)
    session.open()
    session.type_text(0, text)
    assert session.save().ok


# -- control frames ------------------------------------------------------


def test_ping(served):
    host, port = served
    transport = AsyncioSocketTransport(host, port)
    try:
        assert transport.ping() is True
    finally:
        transport.close()


def test_unknown_service_answers_an_error_frame(pool):
    reply = pool.request({"op": "ping", "svc": "dropbox", "tn": "t"})
    with pytest.raises(ProtocolError, match="unknown service"):
        decode_response_frame(reply)


def test_unknown_op_answers_an_error_frame(pool):
    reply = pool.request({"op": "teleport", "svc": "gdocs", "tn": "t"})
    with pytest.raises(ProtocolError, match="unknown op"):
        decode_response_frame(reply)


def test_malformed_http_frame_answers_an_error_frame(pool):
    # op=http but no embedded request fields
    reply = pool.request({"op": "http", "svc": "gdocs", "tn": "t"})
    with pytest.raises(ProtocolError, match="missing field"):
        decode_response_frame(reply)


def test_view_of_unknown_doc_is_empty(served):
    host, port = served
    transport = AsyncioSocketTransport(host, port, service="gdocs",
                                       tenant="lonely")
    try:
        assert transport.server_view("never-created") == ""
    finally:
        transport.close()


# -- tenancy and sharding ------------------------------------------------


def test_tenants_are_isolated(served):
    host, port = served
    alpha = AsyncioSocketTransport(host, port, service="bespin",
                                   tenant="alpha")
    beta = AsyncioSocketTransport(host, port, service="bespin",
                                  tenant="beta")
    try:
        _save_via(alpha, "shared-name", "alpha's words")
        assert alpha.server_view("shared-name") != ""
        # same service, same doc id, different tenant: nothing there
        assert beta.server_view("shared-name") == ""
    finally:
        alpha.close()
        beta.close()


def test_sharding_is_stable_and_spreads():
    server = ReproServer(shards=4)
    docs = [f"doc-{i}" for i in range(64)]
    shards = {doc: server._shard_of("t", doc) for doc in docs}
    # deterministic
    assert shards == {doc: server._shard_of("t", doc) for doc in docs}
    # spreads: 64 docs over 4 shards should touch them all
    assert set(shards.values()) == {0, 1, 2, 3}
    # tenant participates in the hash: same doc may land elsewhere
    assert any(server._shard_of("u", doc) != shard
               for doc, shard in shards.items())


def test_backend_instances_are_lazy_and_sharded(served):
    host, port = served
    tenant = "lazy-tenant"
    transports = [
        AsyncioSocketTransport(host, port, service="gdocs", tenant=tenant)
        for _ in range(1)
    ]
    try:
        # enough docs to touch several shards of this tenant's universe
        for i in range(12):
            _save_via(transports[0], f"spread-{i}", f"text {i}")
    finally:
        for transport in transports:
            transport.close()


# -- broken framing ------------------------------------------------------


def test_garbage_length_prefix_drops_the_connection(served):
    host, port = served
    raw = socketlib.create_connection((host, port), timeout=5.0)
    try:
        raw.sendall(b"not-a-number\nwhatever")
        # server closes; the read sees EOF
        raw.settimeout(5.0)
        assert raw.recv(64) == b""
    finally:
        raw.close()


def test_oversized_frame_is_refused(served):
    host, port = served
    raw = socketlib.create_connection((host, port), timeout=5.0)
    try:
        raw.sendall(b"99999999999\n")  # past MAX_FRAME_BYTES
        raw.settimeout(5.0)
        assert raw.recv(64) == b""
    finally:
        raw.close()


def test_dead_connection_surfaces_as_timeout(served):
    """A pool whose server vanished raises NetworkTimeoutError — the
    resilient client's retry dialect — not a bare socket error."""
    victim = ServerThread(shards=1)
    host, port = victim.start()
    pool = ConnectionPool(host, port, size=1, window=4, timeout=2.0)
    try:
        assert "s" in pool.request(
            {"op": "ping", "svc": "gdocs", "tn": "t"})
        victim.stop()
        with pytest.raises(NetworkTimeoutError):
            pool.request({"op": "ping", "svc": "gdocs", "tn": "t"})
    finally:
        pool.close()
