"""RecbDocument: Enc/Dec/IncE over the confidentiality-only scheme."""

import pytest

from repro.core import Delta, create_document, load_document
from repro.core.document import RecbDocument
from repro.datastructures import IndexedAVL
from repro.errors import (
    CiphertextFormatError,
    DeltaApplicationError,
    PasswordError,
)


@pytest.fixture
def doc(keys, nonce_rng):
    return RecbDocument.create(
        "The quick brown fox jumps over the lazy dog.",
        key_material=keys, block_chars=8, rng=nonce_rng,
    )


class TestEncDec:
    def test_round_trip(self, doc, keys):
        reloaded = RecbDocument.load(doc.wire(), key_material=keys)
        assert reloaded.text == doc.text

    def test_round_trip_via_password(self, nonce_rng):
        doc = create_document("hello", password="pw", scheme="recb",
                              rng=nonce_rng)
        reloaded = load_document(doc.wire(), password="pw")
        assert reloaded.text == "hello"

    def test_wrong_password(self, nonce_rng):
        doc = create_document("hello", password="pw", scheme="recb",
                              rng=nonce_rng)
        with pytest.raises(Exception):
            load_document(doc.wire(), password="nope")

    @pytest.mark.parametrize("b", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_all_block_sizes(self, keys, nonce_rng, b):
        text = "All block sizes must round-trip! é中🎉"
        doc = RecbDocument.create(text, key_material=keys, block_chars=b,
                                  rng=nonce_rng)
        assert doc.text == text
        assert RecbDocument.load(doc.wire(), key_material=keys).text == text

    def test_empty_document(self, keys, nonce_rng):
        doc = RecbDocument.create("", key_material=keys, rng=nonce_rng)
        assert doc.text == "" and doc.char_length == 0
        assert RecbDocument.load(doc.wire(), key_material=keys).text == ""

    def test_missing_credentials(self, doc):
        with pytest.raises(PasswordError):
            RecbDocument.load(doc.wire())

    def test_scheme_mismatch(self, doc, keys, nonce_rng):
        from repro.core.document import RpcDocument
        with pytest.raises(CiphertextFormatError):
            RpcDocument.load(doc.wire(), key_material=keys)

    def test_properties(self, doc):
        assert doc.scheme == "recb"
        assert not doc.supports_integrity
        assert doc.block_chars == 8
        assert doc.char_length == 44
        assert doc.block_count == 6  # ceil(44/8)


class TestIncE:
    def test_insert_middle(self, doc):
        plain = doc.text
        server = doc.wire()
        cdelta = doc.insert(10, "XYZ")
        assert doc.text == plain[:10] + "XYZ" + plain[10:]
        assert cdelta.apply(server) == doc.wire()

    def test_insert_front_and_back(self, doc):
        server = doc.wire()
        server = doc.insert(0, ">>").apply(server)
        server = doc.insert(doc.char_length, "<<").apply(server)
        assert server == doc.wire()
        assert doc.text.startswith(">>") and doc.text.endswith("<<")

    def test_delete_across_blocks(self, doc):
        plain = doc.text
        server = doc.wire()
        cdelta = doc.delete(4, 20)
        assert doc.text == plain[:4] + plain[24:]
        assert cdelta.apply(server) == doc.wire()

    def test_delete_everything(self, doc, keys):
        server = doc.wire()
        cdelta = doc.delete(0, doc.char_length)
        assert doc.text == ""
        server = cdelta.apply(server)
        assert server == doc.wire()
        assert RecbDocument.load(server, key_material=keys).text == ""

    def test_insert_into_empty(self, keys, nonce_rng):
        doc = RecbDocument.create("", key_material=keys, rng=nonce_rng)
        server = doc.wire()
        cdelta = doc.insert(0, "reborn")
        assert cdelta.apply(server) == doc.wire()
        assert doc.text == "reborn"

    def test_multi_edit_delta(self, doc):
        plain = doc.text
        server = doc.wire()
        delta = Delta.parse("=4\t-6\t+quiet\t=10\t+ very")
        cdelta = doc.apply_delta(delta)
        assert doc.text == delta.apply(plain)
        assert cdelta.apply(server) == doc.wire()

    def test_identity_delta(self, doc):
        assert doc.apply_delta(Delta(())) == Delta(())
        assert doc.apply_delta(Delta.parse("=5")) == Delta(())

    def test_delta_too_long_rejected(self, doc):
        with pytest.raises(DeltaApplicationError):
            doc.apply_delta(Delta.parse("=1000\t-1"))

    def test_nul_insert_rejected(self, doc):
        from repro.errors import BlockSizeError
        with pytest.raises(BlockSizeError):
            doc.insert(0, "a\x00b")

    def test_incremental_touches_few_records(self, doc):
        """IncE is sub-linear: a 1-char edit rewrites O(1) records."""
        from repro.core.delta import Delete, Insert
        cdelta = doc.insert(20, "x")
        deleted = sum(
            op.count for op in cdelta.ops if isinstance(op, Delete)
        )
        inserted = sum(
            len(op.text) for op in cdelta.ops if isinstance(op, Insert)
        )
        from repro.encoding.wire import RECORD_CHARS
        assert deleted <= 2 * RECORD_CHARS
        assert inserted <= 3 * RECORD_CHARS


class TestRandomAccess:
    def test_decrypt_char(self, doc):
        plain = doc.text
        for index in [0, 7, 8, 20, len(plain) - 1]:
            assert doc.decrypt_char(index) == plain[index]

    def test_decrypt_char_out_of_range(self, doc):
        with pytest.raises(IndexError):
            doc.decrypt_char(doc.char_length)


class TestAlternativeIndex:
    def test_avl_backing(self, keys, nonce_rng):
        doc = RecbDocument.create(
            "backed by an AVL tree instead", key_material=keys,
            rng=nonce_rng, index_factory=IndexedAVL,
        )
        server = doc.wire()
        server = doc.insert(5, "!!").apply(server)
        server = doc.delete(0, 3).apply(server)
        assert server == doc.wire()
        assert RecbDocument.load(server, key_material=keys,
                                 index_factory=IndexedAVL).text == doc.text


class TestMetrics:
    def test_blowup_decreases_with_block_size(self, keys, nonce_rng):
        text = "y" * 800
        blow = [
            RecbDocument.create(text, key_material=keys, block_chars=b,
                                rng=nonce_rng).blowup()
            for b in (1, 4, 8)
        ]
        assert blow[0] > blow[1] > blow[2]

    def test_fill_histogram(self, doc):
        hist = doc.block_fill_histogram()
        assert sum(k * v for k, v in hist.items()) == doc.char_length

    def test_wire_length_matches(self, doc):
        assert doc.wire_length() == len(doc.wire())


class TestRangeAccess:
    def test_decrypt_range_matches_slice(self, doc):
        plain = doc.text
        for start, end in [(0, 5), (7, 9), (8, 24), (0, len(plain)),
                           (len(plain) - 1, len(plain)), (3, 3)]:
            assert doc.decrypt_range(start, end) == plain[start:end]

    def test_decrypt_range_after_edits(self, doc):
        doc.insert(10, "INSERTED")
        doc.delete(0, 4)
        plain = doc.text
        assert doc.decrypt_range(5, 20) == plain[5:20]

    def test_decrypt_range_bounds(self, doc):
        with pytest.raises(IndexError):
            doc.decrypt_range(0, doc.char_length + 1)
        with pytest.raises(IndexError):
            doc.decrypt_range(5, 2)

    def test_range_access_touches_few_records(self, keys, nonce_rng):
        """Reading 16 chars of a 20k-char doc decrypts O(1) records,
        not the document."""
        from repro.core.document import RecbDocument
        from repro.workloads.documents import document_of_length

        text = document_of_length(20_000, seed=1)
        doc = RecbDocument.create(text, key_material=keys, block_chars=8,
                                  rng=nonce_rng)
        calls = 0
        original = doc._codec.decrypt_record

        def counting(state, record):
            nonlocal calls
            calls += 1
            return original(state, record)

        doc._codec.decrypt_record = counting
        assert doc.decrypt_range(10_000, 10_016) == text[10_000:10_016]
        assert calls <= 4


class TestScale:
    def test_hundred_k_document_round_trip(self, keys, nonce_rng):
        from repro.core.document import RecbDocument
        text = "the quick brown fox jumps over the lazy dog. " * 2300
        doc = RecbDocument.create(text[:100_000], key_material=keys,
                                  block_chars=8, rng=nonce_rng)
        assert doc.char_length == 100_000
        assert doc.block_count == 12_500
        # a mid-document edit stays fast and consistent
        server = doc.wire()
        server = doc.insert(50_000, "NEEDLE").apply(server)
        assert server == doc.wire()
        reloaded = RecbDocument.load(server, key_material=keys)
        assert reloaded.text[50_000:50_006] == "NEEDLE"
