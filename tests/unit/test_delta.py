"""The delta language: parsing, application, canonical form,
coordinate transforms."""

import pytest

from repro.core.delta import (
    Delete,
    Delta,
    Insert,
    Retain,
    SourceDelete,
    SourceInsert,
)
from repro.errors import DeltaApplicationError, DeltaSyntaxError


class TestPaperExamples:
    def test_example_one(self):
        assert Delta.parse("=2\t-5").apply("abcdefg") == "ab"

    def test_example_two(self):
        assert Delta.parse("=2\t-3\t+uv\t=2\t+w").apply("abcdefg") == "abuvfgw"


class TestParseSerialize:
    @pytest.mark.parametrize("text", [
        "", "=5", "-3", "+hello", "=1\t+a\t-2\t=3\t+bc",
    ])
    def test_round_trip(self, text):
        assert Delta.parse(text).serialize() == text

    def test_tab_in_insert_payload(self):
        delta = Delta([Insert("a\tb")])
        assert Delta.parse(delta.serialize()) == delta
        assert delta.apply("") == "a\tb"

    def test_percent_in_insert_payload(self):
        delta = Delta([Insert("100%\t+fun")])
        assert Delta.parse(delta.serialize()).apply("") == "100%\t+fun"

    @pytest.mark.parametrize("bad", [
        "=", "-", "+", "=x", "-1.5", "=0", "-0", "?3", "=1\t\t=2", "= 1",
    ])
    def test_rejects_garbage(self, bad):
        with pytest.raises(DeltaSyntaxError):
            Delta.parse(bad)

    def test_rejects_bad_ops_at_construction(self):
        with pytest.raises(DeltaSyntaxError):
            Delta([Retain(0)])
        with pytest.raises(DeltaSyntaxError):
            Delta([Delete(-1)])
        with pytest.raises(DeltaSyntaxError):
            Delta([Insert("")])


class TestApply:
    def test_identity(self):
        assert Delta(()).apply("abc") == "abc"

    def test_trailing_text_preserved(self):
        assert Delta([Insert("X")]).apply("abc") == "Xabc"

    def test_retain_past_end(self):
        with pytest.raises(DeltaApplicationError):
            Delta([Retain(4)]).apply("abc")

    def test_delete_past_end(self):
        with pytest.raises(DeltaApplicationError):
            Delta([Retain(2), Delete(2)]).apply("abc")

    def test_delete_after_insert_consumes_original(self):
        # "+x -1" on "ab": insert then delete the original 'a'
        assert Delta([Insert("x"), Delete(1)]).apply("ab") == "xb"


class TestProperties:
    def test_length_change(self):
        delta = Delta([Retain(1), Delete(2), Insert("wxyz")])
        assert delta.chars_deleted == 2
        assert delta.chars_inserted == 4
        assert delta.length_change == 2

    def test_is_identity(self):
        assert Delta(()).is_identity
        assert Delta([Retain(5)]).is_identity
        assert not Delta([Insert("x")]).is_identity

    def test_bool(self):
        assert not Delta(())
        assert Delta([Retain(1)])


class TestCanonical:
    def test_merges_runs(self):
        delta = Delta([Retain(1), Retain(2), Insert("a"), Insert("b")])
        assert delta.canonical() == Delta([Retain(3), Insert("ab")])

    def test_delete_before_insert(self):
        delta = Delta([Insert("x"), Delete(2)])
        assert delta.canonical() == Delta([Delete(2), Insert("x")])

    def test_drops_trailing_retain(self):
        delta = Delta([Insert("x"), Retain(5)])
        assert delta.canonical() == Delta([Insert("x")])

    def test_pure_retains_become_empty(self):
        assert Delta([Retain(3), Retain(4)]).canonical() == Delta(())

    def test_semantics_preserved(self):
        doc = "abcdefgh"
        delta = Delta([Insert("1"), Delete(1), Insert("2"), Retain(2),
                       Delete(1), Retain(1), Retain(1)])
        assert delta.canonical().apply(doc) == delta.apply(doc)

    def test_canonical_is_idempotent(self):
        delta = Delta([Insert("1"), Delete(1), Retain(2), Delete(1)])
        once = delta.canonical()
        assert once.canonical() == once

    def test_equivalent_deltas_canonicalize_identically(self):
        """The covert-channel property: same effect → same canonical form."""
        a = Delta([Insert("ab")])
        b = Delta([Insert("a"), Insert("b")])
        assert a.canonical() == b.canonical()


class TestSourceCoordinates:
    def test_source_edits(self):
        delta = Delta([Retain(2), Delete(3), Insert("uv"), Retain(2),
                       Insert("w")])
        assert delta.source_edits() == [
            SourceDelete(2, 3),
            SourceInsert(5, "uv"),
            SourceInsert(7, "w"),
        ]

    def test_source_span(self):
        delta = Delta([Retain(2), Delete(3), Insert("uv")])
        assert delta.source_span() == (2, 5)

    def test_pure_insert_span(self):
        assert Delta([Retain(4), Insert("x")]).source_span() == (4, 4)

    def test_identity_span(self):
        assert Delta([Retain(4)]).source_span() is None


class TestBuilders:
    def test_insertion(self):
        assert Delta.insertion(0, "x").apply("ab") == "xab"
        assert Delta.insertion(2, "x").apply("ab") == "abx"

    def test_deletion(self):
        assert Delta.deletion(1, 1).apply("abc") == "ac"

    def test_replacement(self):
        assert Delta.replacement(1, 1, "XY").apply("abc") == "aXYc"

    def test_replacement_degenerate_forms(self):
        assert Delta.replacement(0, 0, "X").apply("ab") == "Xab"
        assert Delta.replacement(0, 2, "").apply("ab") == ""
