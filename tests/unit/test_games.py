"""Indistinguishability games: no practical distinguisher may beat the
coin flip (except the conceded length leak)."""

import pytest

from repro.security.games import (
    chosen_ciphertext_oracle_leaks_nothing,
    chosen_plaintext_game,
    first_record_adversary,
    frequency_adversary,
    ind_game,
    length_adversary,
)

#: with 100 trials, a fair coin stays under this advantage w.h.p.
ADVANTAGE_BOUND = 0.30


class TestCiphertextOnly:
    @pytest.mark.parametrize("adversary", [
        frequency_adversary, first_record_adversary,
    ], ids=["frequency", "first-record"])
    @pytest.mark.parametrize("scheme", ["recb", "rpc"])
    def test_no_advantage_equal_lengths(self, adversary, scheme):
        result = ind_game(adversary, trials=100, scheme=scheme, seed=3)
        assert result.advantage < ADVANTAGE_BOUND, result

    def test_length_distinguisher_wins(self):
        """The conceded leak: length differences are fully visible."""
        result = ind_game(length_adversary, trials=60,
                          equal_length=False, seed=4)
        assert result.accuracy > 0.95

    def test_length_distinguisher_useless_at_equal_length(self):
        result = ind_game(length_adversary, trials=60,
                          equal_length=True, seed=5)
        assert result.advantage < ADVANTAGE_BOUND


class TestChosenPlaintext:
    @pytest.mark.parametrize("adversary", [
        frequency_adversary, first_record_adversary,
    ], ids=["frequency", "first-record"])
    def test_oracle_access_does_not_help(self, adversary):
        result = chosen_plaintext_game(adversary, trials=60, seed=6)
        assert result.advantage < ADVANTAGE_BOUND + 0.1, result


class TestChosenCiphertext:
    def test_every_tampered_query_rejected(self):
        """The CCA→CPA reduction argument: the decryption oracle rejects
        all modified ciphertexts, returning validity only."""
        assert chosen_ciphertext_oracle_leaks_nothing(trials=25) == 1.0


class TestGameHarness:
    def test_result_arithmetic(self):
        from repro.security.games import GameResult
        assert GameResult(100, 50).advantage == 0.0
        assert GameResult(100, 100).advantage == 1.0
        assert GameResult(100, 0).advantage == 1.0  # anti-correlated counts
        assert GameResult(0, 0).accuracy == 0.0
