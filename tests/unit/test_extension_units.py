"""Extension components in isolation: vault, countermeasures, and the
GDocs mediator's per-message behaviour."""

import random

import pytest

from repro.core.delta import Delete, Delta, Insert, Retain
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.errors import PasswordError
from repro.extension.countermeasures import PAD_FIELD, Countermeasures
from repro.extension.gdocs_ext import GDocsExtension
from repro.extension.passwords import PasswordVault
from repro.net.http import HttpRequest
from repro.services.gdocs import protocol


class TestPasswordVault:
    def test_register_get(self):
        vault = PasswordVault()
        vault.register("d", "pw")
        assert vault.knows("d")
        assert vault.get("d") == "pw"

    def test_prompt_fallback(self):
        vault = PasswordVault(prompt=lambda doc: f"pw-for-{doc}")
        assert vault.get("x") == "pw-for-x"
        assert vault.knows("x")  # cached

    def test_prompt_declined(self):
        vault = PasswordVault(prompt=lambda doc: None)
        with pytest.raises(PasswordError):
            vault.get("x")

    def test_no_prompt(self):
        with pytest.raises(PasswordError):
            PasswordVault().get("x")

    def test_empty_password_rejected(self):
        with pytest.raises(PasswordError):
            PasswordVault().register("d", "")

    def test_forget(self):
        vault = PasswordVault({"d": "pw"})
        vault.forget("d")
        assert not vault.knows("d")


class TestCountermeasures:
    def test_none_is_inert(self):
        cm = Countermeasures.none()
        delta = Delta([Insert("a"), Insert("b")])
        assert cm.shape_delta(delta) == delta
        assert cm.pad_fields({"k": "v"}) == {"k": "v"}
        assert cm.delay() == 0.0

    def test_canonicalization(self):
        cm = Countermeasures(canonicalize_deltas=True)
        shaped = cm.shape_delta(Delta([Insert("a"), Insert("b")]))
        assert shaped == Delta([Insert("ab")])

    def test_padding_adds_field(self):
        cm = Countermeasures(pad_requests=True, rng=random.Random(1))
        fields = cm.pad_fields({"k": "v"})
        assert fields["k"] == "v"
        assert PAD_FIELD in fields

    def test_padding_varies(self):
        cm = Countermeasures(pad_requests=True, rng=random.Random(2))
        lengths = {len(cm.pad_fields({})[PAD_FIELD]) for _ in range(20)}
        assert len(lengths) > 5

    def test_delay_bounded(self):
        cm = Countermeasures(random_delay=True, delay_max_seconds=0.25,
                             rng=random.Random(3))
        assert all(0 <= cm.delay() <= 0.25 for _ in range(50))

    def test_all_preset(self):
        cm = Countermeasures.all(seed=1)
        assert cm.canonicalize_deltas and cm.pad_requests and cm.random_delay


@pytest.fixture
def ext():
    vault = PasswordVault({"doc": "pw"})
    return GDocsExtension(vault, scheme="recb", block_chars=8,
                          rng=DeterministicRandomSource(4))


def _save_request(body_fields):
    from repro.encoding.formenc import encode_form
    return HttpRequest(
        "POST", "http://docs.google.com/Doc?docID=doc",
        body=encode_form(body_fields),
    )


class TestMediatorRequests:
    def test_full_save_encrypted(self, ext):
        request = _save_request({
            protocol.F_SID: "s1", protocol.F_REV: "0",
            protocol.F_DOC_CONTENTS: "top secret",
        })
        out = ext.on_request(request)
        assert out is not None
        assert looks_encrypted(out.form[protocol.F_DOC_CONTENTS])
        assert "secret" not in out.body
        assert out.form[protocol.F_SID] == "s1"  # control fields intact

    def test_delta_transformed(self, ext):
        ext.on_request(_save_request({
            protocol.F_SID: "s1", protocol.F_REV: "0",
            protocol.F_DOC_CONTENTS: "hello world",
        }))
        out = ext.on_request(_save_request({
            protocol.F_SID: "s1", protocol.F_REV: "1",
            protocol.F_DELTA: "=5\t+ there",
        }))
        cdelta = Delta.parse(out.form[protocol.F_DELTA])
        assert "there" not in out.body
        assert any(isinstance(op, Insert) for op in cdelta.ops)
        assert ext.engine("doc").mirror.text == "hello there world"

    def test_open_passes_through(self, ext):
        request = HttpRequest("POST", "http://h/Doc?docID=doc")
        assert ext.on_request(request) is request

    def test_get_passes_through(self, ext):
        request = HttpRequest("GET", "http://h/Doc?docID=doc")
        assert ext.on_request(request) is request

    @pytest.mark.parametrize("action", [
        "spellcheck", "translate", "export", "drawing",
    ])
    def test_feature_requests_dropped(self, ext, action):
        request = HttpRequest(
            "POST", f"http://h/Doc?docID=doc&action={action}"
        )
        assert ext.on_request(request) is None

    def test_unknown_path_dropped(self, ext):
        assert ext.on_request(
            HttpRequest("POST", "http://h/Evil?docID=doc", body="x=1")
        ) is None

    def test_unknown_post_shape_dropped(self, ext):
        assert ext.on_request(_save_request({"mystery": "field"})) is None

    def test_missing_doc_id_dropped(self, ext):
        assert ext.on_request(HttpRequest("POST", "http://h/Doc")) is None

    def test_unknown_method_dropped(self, ext):
        assert ext.on_request(
            HttpRequest("PATCH", "http://h/Doc?docID=doc")
        ) is None


class TestMediatorResponses:
    def test_ack_neutralized(self, ext):
        from repro.net.http import HttpResponse
        from repro.encoding.formenc import encode_form
        request = _save_request({
            protocol.F_SID: "s1", protocol.F_REV: "0",
            protocol.F_DOC_CONTENTS: "data",
        })
        mediated = ext.on_request(request)
        cipher = mediated.form[protocol.F_DOC_CONTENTS]
        ack = HttpResponse(200, encode_form({
            protocol.A_STATUS: "ok", protocol.A_REV: "1",
            protocol.A_CONTENT: cipher,
            protocol.A_CONTENT_HASH: protocol.content_hash(cipher),
            protocol.A_CONFLICT: "0",
        }))
        out = ext.on_response(mediated, ack)
        fields = out.form
        assert fields[protocol.A_CONTENT] == protocol.NEUTRAL_CONTENT
        assert fields[protocol.A_CONTENT_HASH] == protocol.NEUTRAL_HASH

    def test_fetch_decrypted(self, ext):
        from repro.net.http import HttpResponse
        wire = ext.engine("doc").encrypt("fetch me back")
        response = ext.on_response(
            HttpRequest("GET", "http://h/Doc?docID=doc"),
            HttpResponse(200, wire),
        )
        assert response.body == "fetch me back"

    def test_fetch_plaintext_untouched(self, ext):
        from repro.net.http import HttpResponse
        response = ext.on_response(
            HttpRequest("GET", "http://h/Doc?docID=doc"),
            HttpResponse(200, "legacy plaintext document"),
        )
        assert response.body == "legacy plaintext document"

    def test_wrong_password_leaves_ciphertext(self):
        rng = DeterministicRandomSource(5)
        good = GDocsExtension(PasswordVault({"doc": "right"}), rng=rng)
        wire = good.engine("doc").encrypt("hidden")
        bad = GDocsExtension(PasswordVault({"doc": "wrong"}), rng=rng)
        from repro.net.http import HttpResponse
        response = bad.on_response(
            HttpRequest("GET", "http://h/Doc?docID=doc"),
            HttpResponse(200, wire),
        )
        assert response.body == wire  # appears as ciphertext
        assert bad.warnings
