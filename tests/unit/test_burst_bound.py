"""Regression bound: one coalesced burst costs one batched cipher call.

This is the whole point of the coalescing layer — a burst of N
keystrokes used to cost N scalar IncE passes, and must now cost exactly
ONE ``encrypt_many`` invocation covering every touched block (plus
nothing else).  These tests pin that with counter arithmetic: the AES
invocation counters may not move by more than the bound, ever, or the
client scaling curve silently collapses back to flat.

The document is built over a cipher-free stub RNG so nonce-buffer
refills (which legitimately route through the batch path) cannot blur
the accounting.
"""

import pytest

from repro.client.coalesce import EditCoalescer
from repro.core.delta import Delta
from repro.core.document import create_document
from repro.core.keys import KeyMaterial
from repro.obs import value_of

KEYS = KeyMaterial.from_password("burst-bound", salt=b"burstsalt1")


class _CountingRng:
    """Deterministic byte source that never touches a cipher."""

    def __init__(self):
        self._n = 0

    def token(self, nbytes: int) -> bytes:
        out = bytes((self._n + i) & 0xFF for i in range(nbytes))
        self._n += nbytes
        return out


def _aes_snap() -> dict[str, int]:
    return {name: value_of(f"crypto.aes.{name}")
            for name in ("calls", "batch_calls", "encrypt_calls")}


def _scattered_burst(doc_len: int, edits: int) -> Delta:
    """``edits`` single-char replacements spread over the document,
    composed into one burst — many clusters, many touched blocks."""
    journal = EditCoalescer()
    step = doc_len // (edits + 1)
    for k in range(edits):
        journal.add(Delta.replacement(k * step, 1, "Q"))
    burst = journal.flush("drain")
    assert burst is not None
    return burst


@pytest.mark.parametrize("scheme,suffix_blocks", [("recb", 0), ("rpc", 1)])
def test_one_batch_invocation_per_burst(scheme, suffix_blocks):
    doc = create_document("abcdefgh" * 500, key_material=KEYS,
                          scheme=scheme, rng=_CountingRng())
    burst = _scattered_burst(doc.char_length, 30)

    before = _aes_snap()
    blocks_before = value_of("doc.blocks_reencrypted")
    clusters_before = value_of("doc.clusters")
    doc.apply_delta(burst)
    after = _aes_snap()

    blocks = value_of("doc.blocks_reencrypted") - blocks_before
    assert value_of("doc.clusters") - clusters_before >= 2
    assert blocks >= 30  # a scattered burst touches many blocks

    # THE bound: the whole burst was one encrypt_many invocation over
    # every re-encrypted block (+ the scheme's checksum suffix), and
    # it went down the batch path exactly once.
    assert after["batch_calls"] - before["batch_calls"] == 1
    assert after["calls"] - before["calls"] == blocks + suffix_blocks
    assert after["encrypt_calls"] - before["encrypt_calls"] == (
        blocks + suffix_blocks)


@pytest.mark.parametrize("scheme", ["recb", "rpc"])
def test_small_burst_stays_scalar_but_single_pass(scheme):
    """Below the batch threshold the scalar loop runs — still exactly
    one AES call per re-encrypted block, and zero batch invocations."""
    doc = create_document("abcdefgh" * 500, key_material=KEYS,
                          scheme=scheme, rng=_CountingRng())
    burst = _scattered_burst(doc.char_length, 2)

    before = _aes_snap()
    blocks_before = value_of("doc.blocks_reencrypted")
    doc.apply_delta(burst)
    after = _aes_snap()

    blocks = value_of("doc.blocks_reencrypted") - blocks_before
    suffix = 1 if scheme == "rpc" else 0
    assert after["batch_calls"] == before["batch_calls"]
    assert after["calls"] - before["calls"] == blocks + suffix


@pytest.mark.parametrize("scheme", ["recb", "rpc"])
def test_burst_ciphertext_identical_to_sequential_path(scheme):
    """The batched cipher call changes call boundaries only — the wire
    bytes and the cdelta match the per-cluster reference path."""
    def build():
        return create_document("abcdefgh" * 500, key_material=KEYS,
                               scheme=scheme, rng=_CountingRng())

    batched, sequential = build(), build()
    sequential._coalesce_ciphers = False
    assert batched.wire() == sequential.wire()

    burst = _scattered_burst(batched.char_length, 30)
    cd_b = batched.apply_delta(burst)
    cd_s = sequential.apply_delta(burst)
    assert cd_b.serialize() == cd_s.serialize()
    assert batched.wire() == sequential.wire()
