"""RPC codec: chain construction, verification, and every detection
branch."""

import pytest

from repro.core.nonces import RPC_NONCE_BYTES
from repro.core.rpc import ALPHA, RpcCodec, RpcState
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import Record
from repro.errors import (
    CiphertextFormatError,
    DecryptionError,
    IntegrityError,
)

KEY = bytes(range(16))


@pytest.fixture
def codec():
    return RpcCodec(KEY, DeterministicRandomSource(11))


def build(codec, chunks):
    """Assemble a full record list for ``chunks``."""
    state = codec.fresh_state()
    first_lead = codec._rng.token(RPC_NONCE_BYTES)
    if chunks:
        triples = codec.encrypt_span(state, chunks, first_lead, state.r0)
        for record, lead, payload in triples:
            state.add_block(lead, payload, record.char_count)
        records = [r for r, _, _ in triples]
        prefix = codec.prefix(state, first_lead)
    else:
        records = []
        prefix = codec.prefix(state, None)
    return state, prefix + records + codec.suffix(state)


class TestHappyPath:
    def test_round_trip(self, codec):
        _, records = build(codec, ["attack a", "t dawn"])
        state, data = codec.load(records)
        assert "".join(chunk for chunk, _, _ in data) == "attack at dawn"
        assert state.length == 14

    def test_empty_document(self, codec):
        _, records = build(codec, [])
        state, data = codec.load(records)
        assert data == [] and state.length == 0

    def test_single_block(self, codec):
        _, records = build(codec, ["x"])
        _, data = codec.load(records)
        assert data[0][0] == "x"

    def test_alpha_is_payload_width(self):
        assert len(ALPHA) == 8

    def test_randomization(self, codec):
        state = codec.fresh_state()
        lead = codec._rng.token(RPC_NONCE_BYTES)
        triples = codec.encrypt_span(state, ["same"] * 8, lead, state.r0)
        assert len({r.block for r, _, _ in triples}) == 8


class TestDetection:
    def test_wrong_key(self, codec):
        _, records = build(codec, ["secret!!"])
        other = RpcCodec(bytes(16), DeterministicRandomSource(1))
        with pytest.raises(DecryptionError):
            other.load(records)

    def test_replication(self, codec):
        _, records = build(codec, ["aaaa", "bbbb", "cccc"])
        doctored = records[:2] + [records[1]] + records[2:]
        with pytest.raises(IntegrityError):
            codec.load(doctored)

    def test_reorder(self, codec):
        _, records = build(codec, ["aaaa", "bbbb", "cccc"])
        doctored = list(records)
        doctored[1], doctored[2] = doctored[2], doctored[1]
        with pytest.raises(IntegrityError):
            codec.load(doctored)

    def test_drop_interior_block(self, codec):
        _, records = build(codec, ["aaaa", "bbbb", "cccc"])
        with pytest.raises(IntegrityError):
            codec.load(records[:2] + records[3:])

    def test_drop_tail_block(self, codec):
        _, records = build(codec, ["aaaa", "bbbb", "cccc"])
        with pytest.raises(IntegrityError):
            codec.load(records[:3] + records[4:])

    def test_stale_checksum(self, codec):
        """Splice an old checksum onto new data (rollback of the
        bookkeeping only)."""
        state1, records1 = build(codec, ["version1"])
        _, records2 = build(codec, ["version2"])
        doctored = records1[:-1] + [records2[-1]]
        with pytest.raises((IntegrityError, DecryptionError)):
            codec.load(doctored)

    def test_char_count_header_lie(self, codec):
        _, records = build(codec, ["abcd"])
        lying = Record(char_count=2, block=records[1].block)
        with pytest.raises(IntegrityError):
            codec.load([records[0], lying, records[2]])

    def test_cross_document_splice(self, codec):
        _, a = build(codec, ["doc a   ", "tail a  "])
        _, b = build(codec, ["doc b   ", "tail b  "])
        with pytest.raises((IntegrityError, DecryptionError)):
            codec.load([a[0], a[1], b[2], b[3]])

    def test_too_few_records(self, codec):
        with pytest.raises(CiphertextFormatError):
            codec.load([])

    def test_empty_span_rejected(self, codec):
        state = codec.fresh_state()
        with pytest.raises(CiphertextFormatError):
            codec.encrypt_span(state, [], b"\x00" * 4, b"\x00" * 4)


class TestAggregates:
    def test_add_remove_inverse(self):
        state = RpcState(r0=b"\x01\x02\x03\x04")
        before = (state.lead_xor, state.payload_xor, state.length)
        state.add_block(b"\xaa\xbb\xcc\xdd", b"payload!", 8)
        state.remove_block(b"\xaa\xbb\xcc\xdd", b"payload!", 8)
        assert (state.lead_xor, state.payload_xor, state.length) == before

    def test_order_independent(self):
        a = RpcState(r0=bytes(4))
        b = RpcState(r0=bytes(4))
        blocks_ = [(bytes([i] * 4), bytes([i] * 8), i) for i in range(1, 5)]
        for blk in blocks_:
            a.add_block(*blk)
        for blk in reversed(blocks_):
            b.add_block(*blk)
        assert a == b
