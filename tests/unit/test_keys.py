"""Password-based key derivation."""

import pytest

from repro.core.keys import KEY_BYTES, SALT_BYTES, KeyMaterial
from repro.crypto.random import DeterministicRandomSource
from repro.errors import PasswordError


class TestKeyMaterial:
    def test_deterministic_given_salt(self):
        a = KeyMaterial.from_password("pw", salt=b"0123456789")
        b = KeyMaterial.from_password("pw", salt=b"0123456789")
        assert a.key == b.key

    def test_salt_changes_key(self):
        a = KeyMaterial.from_password("pw", salt=b"0123456789")
        b = KeyMaterial.from_password("pw", salt=b"9876543210")
        assert a.key != b.key

    def test_password_changes_key(self):
        salt = b"0123456789"
        assert (
            KeyMaterial.from_password("pw1", salt=salt).key
            != KeyMaterial.from_password("pw2", salt=salt).key
        )

    def test_fresh_salt_from_rng(self):
        rng = DeterministicRandomSource(1)
        km = KeyMaterial.from_password("pw", rng=rng)
        assert len(km.salt) == SALT_BYTES
        assert len(km.key) == KEY_BYTES

    def test_two_fresh_salts_differ(self):
        rng = DeterministicRandomSource(1)
        a = KeyMaterial.from_password("pw", rng=rng)
        b = KeyMaterial.from_password("pw", rng=rng)
        assert a.salt != b.salt and a.key != b.key

    def test_empty_password_rejected(self):
        with pytest.raises(PasswordError):
            KeyMaterial.from_password("", salt=b"0123456789")

    def test_iterations_matter(self):
        salt = b"0123456789"
        a = KeyMaterial.from_password("pw", salt=salt, iterations=1000)
        b = KeyMaterial.from_password("pw", salt=salt, iterations=2000)
        assert a.key != b.key

    def test_check(self):
        km = KeyMaterial.from_password("pw", salt=b"0123456789")
        assert km.check(km.key)
        assert not km.check(bytes(KEY_BYTES))

    def test_unicode_password(self):
        km = KeyMaterial.from_password("contraseña-中文", salt=b"0123456789")
        assert len(km.key) == KEY_BYTES
