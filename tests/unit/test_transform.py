"""EncryptionEngine: the encrypt/decrypt/transform_delta facade."""

import pytest

from repro.core.transform import EncryptionEngine
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.errors import TransformError


@pytest.fixture
def engine():
    return EncryptionEngine("pw", scheme="rpc", block_chars=8,
                            rng=DeterministicRandomSource(3))


class TestEngine:
    def test_encrypt_produces_wire(self, engine):
        wire = engine.encrypt("my plaintext")
        assert looks_encrypted(wire)
        assert "plaintext" not in wire

    def test_decrypt_inverts(self, engine):
        wire = engine.encrypt("round trip me")
        other = EncryptionEngine("pw")
        assert other.decrypt(wire) == "round trip me"
        assert other.scheme == "rpc"

    def test_transform_delta_tracks_server(self, engine):
        from repro.core.delta import Delta
        server = engine.encrypt("hello world")
        cdelta = engine.transform_delta("=5\t+, dear")
        server = Delta.parse(cdelta).apply(server)
        assert server == engine.mirror.wire()
        assert engine.mirror.text == "hello, dear world"

    def test_decrypt_adopts_mirror_for_transforms(self, engine):
        from repro.core.delta import Delta
        server = engine.encrypt("adopt me")
        other = EncryptionEngine("pw")
        other.decrypt(server)
        cdelta = other.transform_delta("+x ")
        assert Delta.parse(cdelta).apply(server) == other.mirror.wire()
        assert other.mirror.text == "x adopt me"

    def test_transform_before_state_fails(self, engine):
        with pytest.raises(TransformError):
            engine.transform_delta("=1")

    def test_reencrypt_reuses_salt(self, engine):
        wire1 = engine.encrypt("v1")
        wire2 = engine.encrypt("v2 is different")
        # same header prefix (same salt/scheme/params)
        head1 = wire1.split(".")[0]
        head2 = wire2.split(".")[0]
        assert head1 == head2

    def test_mirror_none_initially(self):
        assert EncryptionEngine("pw").mirror is None
