"""repro.net.faults: the seeded fault plan, kind by kind."""

import pytest

from repro.errors import NetworkTimeoutError
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, updates_only
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import SimClock
from repro.obs import capture


def _save(i: int = 0) -> HttpRequest:
    return HttpRequest("POST", f"http://h/Doc?docID=d&i={i}",
                       body=f"sid=s&rev={i}&delta=%3D4")


def _fetch() -> HttpRequest:
    return HttpRequest("GET", "http://h/Doc?docID=d")


class RecordingServer:
    """Echoes 200 and remembers every request body it was handed."""

    def __init__(self):
        self.seen: list[str] = []

    def __call__(self, request: HttpRequest) -> HttpResponse:
        self.seen.append(request.body)
        return HttpResponse(200, f"ok:{len(self.seen)}")


def deliver(plan, request, server=None, clock=None):
    server = server if server is not None else RecordingServer()
    clock = clock if clock is not None else SimClock()
    return plan.deliver(request, server, clock), server, clock


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="drop", rate=1.5)

    def test_bad_where_rejected(self):
        with pytest.raises(ValueError, match="where"):
            FaultSpec(kind="corrupt", where="sideways")

    def test_updates_only_predicate(self):
        assert updates_only(_save())
        assert not updates_only(_fetch())
        assert not updates_only(HttpRequest("POST", "http://h/Doc",
                                            body=""))


class TestKinds:
    def test_clean_plan_is_transparent(self):
        plan = FaultPlan([])
        (request, response), server, _ = deliver(plan, _save())
        assert response.status == 200
        assert server.seen == [_save().body]
        assert plan.injections == []

    def test_drop_times_out_before_the_server(self):
        plan = FaultPlan([FaultSpec(kind="drop", at=(0,))],
                         timeout_seconds=2.5)
        server, clock = RecordingServer(), SimClock()
        with pytest.raises(NetworkTimeoutError):
            plan.deliver(_save(), server, clock)
        assert server.seen == []           # never arrived
        assert clock.now() == 2.5          # the client waited it out
        assert plan.injections == [(0, "drop")]

    def test_blackhole_processes_then_times_out(self):
        plan = FaultPlan([FaultSpec(kind="blackhole", at=(0,))])
        server, clock = RecordingServer(), SimClock()
        with pytest.raises(NetworkTimeoutError, match="DID process"):
            plan.deliver(_save(), server, clock)
        assert len(server.seen) == 1       # the save landed

    def test_delay_advances_the_clock_only(self):
        plan = FaultPlan([FaultSpec(kind="delay", at=(0,),
                                    delay_seconds=0.9)])
        (request, response), server, clock = deliver(plan, _save())
        assert response.ok and len(server.seen) == 1
        assert clock.now() == 0.9

    def test_dup_delivers_twice(self):
        plan = FaultPlan([FaultSpec(kind="dup", at=(0,))])
        (request, response), server, _ = deliver(plan, _save())
        assert len(server.seen) == 2
        assert response.body == "ok:2"     # the client hears the second

    def test_reorder_holds_then_flushes_after_successor(self):
        plan = FaultPlan([FaultSpec(kind="reorder", at=(0,))])
        server, clock = RecordingServer(), SimClock()
        with pytest.raises(NetworkTimeoutError):
            plan.deliver(_save(0), server, clock)
        assert server.seen == []           # held, not delivered
        plan.deliver(_save(1), server, clock)
        # the successor reached the server FIRST; the held request
        # landed late and its response went nowhere
        assert server.seen == [_save(1).body, _save(0).body]

    def test_late_delivery_failure_is_invisible(self):
        plan = FaultPlan([FaultSpec(kind="reorder", at=(0,))])

        def flaky(request):
            if "i=0" in request.url:
                raise RuntimeError("late packet rejected")
            return HttpResponse(200, "ok")

        clock = SimClock()
        with pytest.raises(NetworkTimeoutError):
            plan.deliver(_save(0), flaky, clock)
        request, response = plan.deliver(_save(1), flaky, clock)
        assert response.ok                 # the late crash never surfaces

    def test_truncate_request_shortens_body(self):
        plan = FaultPlan([FaultSpec(kind="truncate", at=(0,))], seed=5)
        (request, response), server, _ = deliver(plan, _save())
        assert len(server.seen[0]) < len(_save().body)
        assert request.body == server.seen[0]

    def test_corrupt_response_flips_one_char(self):
        plan = FaultPlan(
            [FaultSpec(kind="corrupt", at=(0,), where="response")],
            seed=5,
        )
        (request, response), server, _ = deliver(plan, _save())
        assert server.seen == [_save().body]   # request untouched
        clean = "ok:1"
        assert response.body != clean
        assert len(response.body) == len(clean)

    def test_http_5xx_fabricated_without_server(self):
        plan = FaultPlan([FaultSpec(kind="http_5xx", at=(0,),
                                    status=502)])
        (request, response), server, _ = deliver(plan, _save())
        assert response.status == 502
        assert server.seen == []           # the server never saw it

    def test_http_429_carries_retry_after(self):
        plan = FaultPlan([FaultSpec(kind="http_429", at=(0,),
                                    retry_after=3.0)])
        (request, response), server, _ = deliver(plan, _save())
        assert response.status == 429
        assert response.headers["Retry-After"] == "3.0"
        assert server.seen == []


class TestScheduling:
    def test_match_restricts_eligibility(self):
        plan = FaultPlan([FaultSpec(kind="drop", rate=1.0,
                                    match=updates_only)])
        (request, response), server, clock = deliver(plan, _fetch())
        assert response.ok                 # fetches sail through
        with pytest.raises(NetworkTimeoutError):
            plan.deliver(_save(), server, clock)

    def test_limit_caps_injections(self):
        plan = FaultPlan([FaultSpec(kind="drop", rate=1.0, limit=2)])
        server, clock = RecordingServer(), SimClock()
        for _ in range(2):
            with pytest.raises(NetworkTimeoutError):
                plan.deliver(_save(), server, clock)
        request, response = plan.deliver(_save(), server, clock)
        assert response.ok
        assert len(plan.injections) == 2

    def test_first_matching_spec_wins(self):
        plan = FaultPlan([
            FaultSpec(kind="delay", at=(0,)),
            FaultSpec(kind="drop", at=(0,)),
        ])
        (request, response), _, _ = deliver(plan, _save())
        assert response.ok                 # delay won, drop never fired
        assert plan.injections == [(0, "delay")]

    def test_quiesce_stops_injection(self):
        plan = FaultPlan([FaultSpec(kind="drop", rate=1.0)])
        plan.quiesce()
        (request, response), _, _ = deliver(plan, _save())
        assert response.ok and plan.injections == []

    def test_observed_includes_lost_requests(self):
        plan = FaultPlan([FaultSpec(kind="drop", at=(0,))])
        server, clock = RecordingServer(), SimClock()
        with pytest.raises(NetworkTimeoutError):
            plan.deliver(_save(), server, clock)
        assert [r.body for r in plan.observed] == [_save().body]

    def test_injections_counted_in_registry(self):
        plan = FaultPlan([FaultSpec(kind="dup", at=(0, 1))])
        server, clock = RecordingServer(), SimClock()
        with capture() as cap:
            plan.deliver(_save(0), server, clock)
            plan.deliver(_save(1), server, clock)
        assert cap["net.faults.injected"] == 2
        assert cap["net.faults.dup"] == 2


class TestDeterminism:
    def _script(self, seed):
        plan = FaultPlan.uniform(0.5, seed=seed)
        server, clock = RecordingServer(), SimClock()
        outcomes = []
        for i in range(12):
            try:
                _, response = plan.deliver(_save(i), server, clock)
                outcomes.append(response.status)
            except NetworkTimeoutError:
                outcomes.append("timeout")
        return plan.injections, outcomes, server.seen, clock.now()

    def test_same_seed_replays_identically(self):
        assert self._script(42) == self._script(42)

    def test_different_seeds_diverge(self):
        assert self._script(42) != self._script(43)

    def test_every_kind_reachable_from_uniform(self):
        seen: set[str] = set()
        plan = FaultPlan.uniform(0.35, seed=9)
        server, clock = RecordingServer(), SimClock()
        for i in range(200):
            try:
                plan.deliver(_save(i), server, clock)
            except NetworkTimeoutError:
                pass
        seen = {kind for _, kind in plan.injections}
        assert seen == set(FAULT_KINDS)
