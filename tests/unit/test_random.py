"""Random sources: determinism, independence, and the system source."""

from repro.crypto.random import (
    DeterministicRandomSource,
    RandomSource,
    SystemRandomSource,
)


class TestDeterministicSource:
    def test_same_seed_same_stream(self):
        a = DeterministicRandomSource(42)
        b = DeterministicRandomSource(42)
        assert a.token(100) == b.token(100)

    def test_different_seeds_differ(self):
        assert (
            DeterministicRandomSource(1).token(32)
            != DeterministicRandomSource(2).token(32)
        )

    def test_stream_is_stateful(self):
        src = DeterministicRandomSource(7)
        assert src.token(16) != src.token(16)

    def test_odd_sizes_concatenate_consistently(self):
        a = DeterministicRandomSource(9)
        b = DeterministicRandomSource(9)
        chunks = a.token(3) + a.token(5) + a.token(9)
        assert chunks == b.token(17)

    def test_zero_bytes(self):
        assert DeterministicRandomSource(0).token(0) == b""

    def test_bytes_seed(self):
        a = DeterministicRandomSource(b"seed-material")
        b = DeterministicRandomSource(b"seed-material")
        assert a.token(8) == b.token(8)

    def test_fork_labels_independent(self):
        src = DeterministicRandomSource(5)
        assert src.fork(b"alpha").token(16) != src.fork(b"beta").token(16)

    def test_fork_reproducible(self):
        assert (
            DeterministicRandomSource(5).fork(b"x").token(16)
            == DeterministicRandomSource(5).fork(b"x").token(16)
        )

    def test_fork_does_not_disturb_parent(self):
        a = DeterministicRandomSource(5)
        b = DeterministicRandomSource(5)
        a.fork(b"child")
        assert a.token(16) == b.token(16)

    def test_satisfies_protocol(self):
        assert isinstance(DeterministicRandomSource(0), RandomSource)


class TestSystemSource:
    def test_length_and_type(self):
        src = SystemRandomSource()
        out = src.token(33)
        assert isinstance(out, bytes) and len(out) == 33

    def test_not_obviously_repeating(self):
        src = SystemRandomSource()
        assert src.token(16) != src.token(16)

    def test_satisfies_protocol(self):
        assert isinstance(SystemRandomSource(), RandomSource)
