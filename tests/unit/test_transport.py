"""The transport seam: frame codec, in-process equivalence, SharedLink.

PR 7 split "how a request reaches the service" out of ``Channel`` into
:class:`repro.net.transport.Transport`.  These tests pin the three
load-bearing promises: the frame codec round-trips any request/response
byte-for-byte, the in-process transport is indistinguishable from the
old direct call (every fuzz/chaos baseline depends on it), and the new
shared-bandwidth latency mode degrades to the classic independent
model when the link is idle.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.net.http import HttpRequest, HttpResponse
from repro.net.latency import LatencyModel, SharedLink, SimClock
from repro.net.transport import (
    InProcessTransport,
    Transport,
    decode_request_frame,
    decode_response_frame,
    encode_request_frame,
    encode_response_frame,
)


# -- the frame codec -----------------------------------------------------


def test_request_frame_roundtrip():
    request = HttpRequest(
        method="POST",
        url="https://docs.example.com/save?docID=a&b=1",
        body="content=PE1-RECB&sid=s%201&weird=\n\t=&+",
        headers={"Content-Type": "application/x-www-form-urlencoded",
                 "X-Odd": "a=b&c d"},
    )
    fields = encode_request_frame(request, rid="42", service="gdocs",
                                  tenant="t1")
    assert fields["id"] == "42"
    assert fields["svc"] == "gdocs"
    assert fields["tn"] == "t1"
    rebuilt = decode_request_frame(fields)
    assert rebuilt.method == request.method
    assert rebuilt.url == request.url
    assert rebuilt.body == request.body
    assert rebuilt.headers == request.headers


def test_response_frame_roundtrip():
    response = HttpResponse(status=409, body="rev=7&conflict=1",
                            headers={"Retry-After": "2.5"})
    fields = encode_response_frame(response, rid="9")
    rebuilt = decode_response_frame(fields)
    assert rebuilt.status == 409
    assert rebuilt.body == response.body
    assert rebuilt.headers == response.headers


def test_request_frame_missing_field_raises():
    fields = encode_request_frame(
        HttpRequest(method="GET", url="http://x/", body="", headers={}),
        rid="1", service="gdocs",
    )
    del fields["m"]
    with pytest.raises(ProtocolError):
        decode_request_frame(fields)


def test_response_error_frame_raises():
    with pytest.raises(ProtocolError, match="unknown service"):
        decode_response_frame({"id": "1", "e": "unknown service 'nope'"})
    with pytest.raises(ProtocolError, match="status"):
        decode_response_frame({"id": "1", "b": "no status here"})


# -- InProcessTransport --------------------------------------------------


def test_in_process_transport_is_a_direct_call():
    seen = []

    def server(request):
        seen.append(request)
        return HttpResponse(status=200, body="ok", headers={})

    transport = InProcessTransport(server)
    assert isinstance(transport, Transport)
    request = HttpRequest(method="GET", url="http://x/", body="",
                          headers={})
    response = transport(request)
    # no serialization: the very same objects pass through
    assert seen[0] is request
    assert response.body == "ok"
    assert transport.server is server


def test_channel_wraps_bare_callables_and_passes_transports_through():
    server = lambda request: HttpResponse(200, "ok", {})  # noqa: E731
    assert isinstance(Channel(server).transport, InProcessTransport)
    transport = InProcessTransport(server)
    assert Channel(transport).transport is transport


# -- SharedLink ----------------------------------------------------------


def _quiet_model(**kwargs) -> LatencyModel:
    """No RTT/server noise: latency is purely the transfer term."""
    return LatencyModel(rtt_mean=0.0, rtt_jitter=0.0, server_mean=0.0,
                        server_jitter=0.0, rng=random.Random(0), **kwargs)


def test_idle_link_matches_the_private_model():
    private = _quiet_model(bytes_per_second=1_000.0)
    shared = _quiet_model(bytes_per_second=1_000.0,
                          link=SharedLink(bytes_per_second=1_000.0))
    # far-apart arrivals: the link is always idle, numbers identical
    now = 0.0
    for nbytes in (100, 250, 1_000):
        lone = private.request_latency(nbytes, 0)
        pooled = shared.request_latency(nbytes, 0, now=now)
        assert pooled == pytest.approx(lone)
        now += 100.0


def test_busy_link_queues_transfers():
    link = SharedLink(bytes_per_second=1_000.0)
    # two 1000-byte transfers arriving together: the first takes 1 s,
    # the second waits out the first and finishes at 2 s
    assert link.reserve(0.0, 1_000) == pytest.approx(1.0)
    assert link.reserve(0.0, 1_000) == pytest.approx(2.0)
    # a later arrival only waits for the remainder
    assert link.reserve(1.5, 500) == pytest.approx(1.0)  # 0.5 wait + 0.5


def test_aggregate_throughput_is_capped():
    link = SharedLink(bytes_per_second=10_000.0)
    sessions = 50
    total = sum(link.reserve(0.0, 1_000) for _ in range(sessions))
    # 50 kB through a 10 kB/s link must occupy >= 5 link-seconds
    assert link.busy_until == pytest.approx(5.0)
    # the last session's latency reflects the whole queue, not a
    # private link (the pre-PR-7 bug this mode fixes)
    assert total > sessions * (1_000 / 10_000.0)


def test_model_without_now_still_works_with_link():
    model = _quiet_model(bytes_per_second=1_000.0,
                         link=SharedLink(bytes_per_second=1_000.0))
    # now defaults to 0.0: still well-defined, just always "at start"
    assert model.request_latency(1_000, 0) == pytest.approx(1.0)


def test_channel_feeds_its_clock_to_the_link():
    link = SharedLink(bytes_per_second=1_000.0)
    model = _quiet_model(bytes_per_second=1_000.0, link=link)
    server = lambda request: HttpResponse(200, "", {})  # noqa: E731
    channel = Channel(server, latency=model, clock=SimClock())
    body = "x" * 100
    request = HttpRequest(method="POST", url="http://x/", body=body,
                          headers={})
    first = channel.send(request)
    assert first.status == 200
    # the clock advanced past the transfer, so the next reservation
    # arrives *after* the link freed up — no spurious queueing
    wire = request.wire_bytes + first.wire_bytes
    assert channel.clock.now() == pytest.approx(wire / 1_000.0)
    channel.send(request)
    assert channel.clock.now() == pytest.approx(2 * wire / 1_000.0)
