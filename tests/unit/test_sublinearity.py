"""The paper's sub-linearity claim as a counter-based regression test.

Section V claims IncE does work proportional to the edited cluster plus
the index search path — O(cluster + log n) — not to the document size.
Timing cannot enforce that robustly in CI, but operation counts can:
``obs.capture`` diffs ``crypto.aes.calls`` and ``index.node_visits``
around a single-word edit on a >=10k-block document and bounds them by
``blocks_reencrypted + C*log2(n)``.  If ``apply_delta`` ever degrades
to touching O(n) blocks, these bounds fail by orders of magnitude
(measured: ~3 AES calls for the edit vs ~17k for a full rewrite).
"""

import math

import pytest

from repro.core import Delta, KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.obs import capture

KEYS = KeyMaterial.from_password("sublinear", salt=b"sublinear1")

#: ~108k chars at block_chars=8 -> ~13.5k blocks, past the 10k floor
TEXT = "lorem ipsum dolor sit amet " * 4000

#: generous constants — the skip list's pole heights are randomized, so
#: visit counts vary between runs (measured 37-101 at n~13.5k since the
#: splice/get_range rewrite; 100-250 before it); the bounds leave ~3x
#: headroom over the worst observation while staying ~100x below the
#: O(n) cost a regression would produce
AES_LOG_FACTOR = 4
VISITS_LOG_FACTOR = 24


def _big_doc(scheme):
    return create_document(TEXT, key_material=KEYS, scheme=scheme,
                           block_chars=8, rng=DeterministicRandomSource(3))


@pytest.mark.parametrize("scheme", ["recb", "rpc"])
class TestSingleEditIsSublinear:
    def test_aes_calls_bounded_by_cluster_plus_log(self, scheme):
        doc = _big_doc(scheme)
        n_blocks = doc.char_length // doc.block_chars
        assert n_blocks >= 10_000
        with capture() as cap:
            doc.apply_delta(Delta.replacement(doc.char_length // 2, 0,
                                              "word "))
        bound = cap["doc.blocks_reencrypted"] + \
            AES_LOG_FACTOR * math.log2(n_blocks)
        assert 0 < cap["crypto.aes.calls"] <= bound, (
            f"{scheme}: single-word edit on {n_blocks} blocks cost "
            f"{cap['crypto.aes.calls']} cipher calls (bound {bound:.0f}) — "
            f"apply_delta is no longer sub-linear"
        )
        assert cap["doc.clusters"] == 1

    def test_index_visits_logarithmic(self, scheme):
        doc = _big_doc(scheme)
        n_blocks = doc.char_length // doc.block_chars
        with capture() as cap:
            doc.apply_delta(Delta.replacement(doc.char_length // 2, 0,
                                              "word "))
        bound = VISITS_LOG_FACTOR * math.log2(n_blocks)
        assert 0 < cap["index.node_visits"] <= bound, (
            f"{scheme}: edit walked {cap['index.node_visits']} index nodes "
            f"(bound {bound:.0f}) — the block index is no longer O(log n)"
        )
        # The whole cluster must ride one range splice, not per-rank
        # delete/insert loops, and its level-0 walk is O(cluster).
        assert cap["index.splices"] == 1
        assert cap["index.range_visits"] <= 16 * cap["doc.blocks_repacked"] + 16

    def test_full_rewrite_shows_the_linear_contrast(self, scheme):
        """The same counters DO scale with n when every block changes —
        proof the sub-linear numbers above aren't an instrumentation
        blind spot.  Since the splice rewrite, the O(n) component of a
        whole-document replacement shows up as level-0 walk steps
        (``index.range_visits``), not as search-path descents."""
        doc = _big_doc(scheme)
        n_blocks = doc.char_length // doc.block_chars
        with capture() as cap:
            doc.apply_delta(Delta.replacement(0, doc.char_length,
                                              "x" * doc.char_length))
        assert cap["crypto.aes.calls"] >= n_blocks
        assert cap["index.range_visits"] >= n_blocks
