"""GDocsServer merge mode: unit-level behaviour of the OT path."""

import pytest

from repro.net.channel import Channel
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer


def session(channel, doc_id="doc"):
    """Open a session and return (sid, rev)."""
    resp = channel.send(protocol.open_request(doc_id))
    return resp.form[protocol.F_SID], int(resp.form[protocol.A_REV])


@pytest.fixture
def merging():
    server = GDocsServer(merge_concurrent=True)
    return server, Channel(server)


class TestMergePath:
    def test_stale_delta_is_transformed(self, merging):
        server, ch = merging
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "abcdef"))
        # concurrent session appends at the end (rev 1 -> 2)
        sid2, _ = session(ch)
        ch.send(protocol.full_save_request("doc", sid2, 1, "abcdef"))  # dedup
        ch.send(protocol.delta_save_request("doc", sid2, 1, "=6\t+TAIL"))
        # first session's stale delta (base rev 1) inserts at the front
        resp = ch.send(protocol.delta_save_request("doc", sid, 1, "+HEAD "))
        ack = protocol.Ack.from_response(resp)
        assert ack.merged and not ack.conflict
        # no content echo: the Ack carries the mergePatch instead, a
        # delta from the saver's post-save text to the merged text
        assert ack.content_from_server == ""
        assert server.store.get("doc").content == "HEAD abcdefTAIL"
        from repro.core.delta import Delta
        patched = Delta.parse(ack.merge_patch).apply("HEAD abcdef")
        assert patched == "HEAD abcdefTAIL"
        assert ack.content_from_server_hash == \
            protocol.content_hash("HEAD abcdefTAIL")
        assert server.merges_performed == 1

    def test_merge_blocked_by_intervening_full_save(self, merging):
        server, ch = merging
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "v1"))
        sid2, _ = session(ch)
        ch.send(protocol.full_save_request("doc", sid2, 1,
                                           "completely new"))  # real full save
        resp = ch.send(protocol.delta_save_request("doc", sid, 1, "+x"))
        ack = protocol.Ack.from_response(resp)
        assert ack.conflict and not ack.merged  # cannot transform past it
        assert server.merges_performed == 0

    def test_identity_full_save_does_not_bump_revision(self, merging):
        server, ch = merging
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "stable"))
        rev_after_first = server.store.get("doc").revision
        sid2, _ = session(ch)
        ch.send(protocol.full_save_request("doc", sid2, rev_after_first,
                                           "stable"))
        assert server.store.get("doc").revision == rev_after_first

    def test_merge_disabled_by_default(self):
        server = GDocsServer()
        ch = Channel(server)
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "base"))
        sid2, _ = session(ch)
        ch.send(protocol.full_save_request("doc", sid2, 1, "base"))
        ch.send(protocol.delta_save_request("doc", sid2, 1, "+x"))
        resp = ch.send(protocol.delta_save_request("doc", sid, 1, "+y"))
        assert protocol.Ack.from_response(resp).conflict

    def test_merge_respects_censor(self):
        server = GDocsServer(merge_concurrent=True, reject_encrypted=True)
        ch = Channel(server)
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "plain text"))
        sid2, _ = session(ch)
        ch.send(protocol.full_save_request("doc", sid2, 1, "plain text"))
        ch.send(protocol.delta_save_request("doc", sid2, 1, "+ok "))
        wall = "A2B3C4D5E6F7" * 60
        resp = ch.send(protocol.delta_save_request("doc", sid, 1,
                                                   f"+{wall}"))
        assert resp.status == 403  # merged result would look encrypted

    def test_ops_log_tracks_deltas(self, merging):
        server, ch = merging
        sid, rev = session(ch)
        ch.send(protocol.full_save_request("doc", sid, rev, "abc"))
        ch.send(protocol.delta_save_request("doc", sid, 1, "+x"))
        doc = server.store.get("doc")
        assert doc.ops_log == [None, "+x"]
        assert doc.deltas_since(1) == ["+x"]
        assert doc.deltas_since(0) is None  # full save in the window
