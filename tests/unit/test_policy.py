"""repro.net.policy: deadline-bounded seeded backoff."""

import pytest

from repro.net.http import HttpResponse
from repro.net.latency import SimClock
from repro.net.policy import (
    RETRYABLE_STATUSES,
    RetryPolicy,
    RetryState,
    retry_after_of,
)


def _no_jitter(**kw) -> RetryPolicy:
    return RetryPolicy(jitter=0.0, **kw)


class TestBackoffSchedule:
    def test_exponential_then_capped(self):
        policy = _no_jitter(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                            max_attempts=6, deadline=1000.0)
        state = policy.make_state(SimClock())
        delays = [state.backoff() for _ in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_attempt_budget_exhausts(self):
        policy = _no_jitter(max_attempts=3, deadline=1000.0)
        state = policy.make_state(SimClock())
        assert state.backoff() is not None
        assert state.backoff() is not None
        assert state.backoff() is None      # 3 attempts spent
        assert state.attempts == 3

    def test_deadline_exhausts_on_sim_clock(self):
        clock = SimClock()
        policy = _no_jitter(base_delay=1.0, max_attempts=99, deadline=5.0)
        state = policy.make_state(clock)
        spent = 0.0
        while (delay := state.backoff()) is not None:
            spent += delay
            clock.advance(delay)
        assert spent <= 5.0
        # the very next ask is refused because delay would cross it
        assert state.backoff() is None

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, seed=11,
                             deadline=1000.0, max_attempts=99)
        state = policy.make_state(SimClock())
        first = state.backoff()
        assert 0.5 <= first <= 1.5
        replay = RetryPolicy(base_delay=1.0, jitter=0.5, seed=11,
                             deadline=1000.0,
                             max_attempts=99).make_state(SimClock())
        assert replay.backoff() == first

    def test_states_get_distinct_jitter_streams(self):
        policy = RetryPolicy(jitter=0.5, seed=3, deadline=1000.0)
        a = policy.make_state(SimClock())
        b = policy.make_state(SimClock())
        assert a.backoff() != b.backoff()

    def test_retry_after_raises_the_floor(self):
        policy = _no_jitter(base_delay=0.25, deadline=1000.0)
        state = policy.make_state(SimClock())
        asked = HttpResponse(429, "slow down",
                             headers={"Retry-After": "4.0"})
        assert state.backoff(asked) == 4.0

    def test_elapsed_tracks_the_sim_clock(self):
        clock = SimClock()
        state = RetryPolicy().make_state(clock)
        clock.advance(2.5)
        assert state.elapsed == 2.5


class TestClassification:
    def test_retryable_statuses(self):
        policy = RetryPolicy()
        for status in sorted(RETRYABLE_STATUSES):
            assert policy.retryable(HttpResponse(status, ""))
        for status in (200, 400, 403, 404, 409):
            assert not policy.retryable(HttpResponse(status, ""))

    def test_custom_retry_statuses(self):
        policy = RetryPolicy(retry_statuses=frozenset({418}))
        assert policy.retryable(HttpResponse(418, ""))
        assert not policy.retryable(HttpResponse(503, ""))


class TestRetryAfter:
    def test_absent_header(self):
        assert retry_after_of(HttpResponse(429, "")) is None
        assert retry_after_of(None) is None

    def test_numeric_header(self):
        response = HttpResponse(429, "", headers={"Retry-After": "2.5"})
        assert retry_after_of(response) == 2.5

    def test_junk_and_negative_ignored(self):
        junk = HttpResponse(429, "", headers={"Retry-After": "soon"})
        assert retry_after_of(junk) is None
        negative = HttpResponse(429, "", headers={"Retry-After": "-1"})
        assert retry_after_of(negative) is None


class TestNoWallClock:
    def test_backoff_consumes_no_real_time(self):
        """The whole schedule is simulated: exhausting a 45 s deadline
        must not sleep for 45 s of wall-clock."""
        import time
        clock = SimClock()
        policy = RetryPolicy(seed=1)
        state = policy.make_state(clock)
        started = time.monotonic()
        while (delay := state.backoff()) is not None:
            clock.advance(delay)
        assert time.monotonic() - started < 1.0
        assert clock.now() > 0.0
