"""Steganographic ciphertext encoding (the SVI-A extension)."""

import pytest

from repro.core import KeyMaterial, create_document, load_document
from repro.core.delta import Delta
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.stego import (
    STEGO_RECORD_CHARS,
    WORD_CHARS,
    WORDS,
    WORDS_PER_RECORD,
    looks_stego,
    stego_header_length,
    stego_rewrite_cdelta,
    stego_unwrap,
    stego_wrap,
)
from repro.errors import CiphertextFormatError
from repro.security.analysis import ENCRYPTION_THRESHOLD, encryption_score

KEYS = KeyMaterial.from_password("pw", salt=b"stego-salt")


def make_doc(text="the censored truth", scheme="rpc", b=8):
    return create_document(text, key_material=KEYS, scheme=scheme,
                           block_chars=b, rng=DeterministicRandomSource(3))


class TestWordList:
    def test_1024_distinct_words(self):
        assert len(WORDS) == 1024
        assert len(set(WORDS)) == 1024

    def test_all_five_letters_lowercase(self):
        assert all(len(w) == 5 and w.isalpha() and w.islower()
                   for w in WORDS)

    def test_record_geometry(self):
        assert WORDS_PER_RECORD == 14  # 136 bits / 10 rounded up
        assert STEGO_RECORD_CHARS == 14 * WORD_CHARS == 84


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["recb", "rpc"])
    @pytest.mark.parametrize("text", ["", "x", "the censored truth é中"])
    def test_wrap_unwrap(self, scheme, text):
        wire = make_doc(text, scheme).wire()
        assert stego_unwrap(stego_wrap(wire)) == wire

    def test_unwrapped_document_decrypts(self):
        doc = make_doc()
        stego = stego_wrap(doc.wire())
        reloaded = load_document(stego_unwrap(stego), key_material=KEYS)
        assert reloaded.text == doc.text

    def test_looks_stego(self):
        stego = stego_wrap(make_doc().wire())
        assert looks_stego(stego)
        assert not looks_stego(make_doc().wire())
        assert not looks_stego("ordinary English prose here")
        assert not looks_stego("")

    def test_header_length_accounts_prefix(self):
        doc = make_doc()
        stego = stego_wrap(doc.wire())
        data_records = (
            len(stego) - stego_header_length(doc.wire())
        ) / STEGO_RECORD_CHARS
        # start + data blocks + checksum
        assert data_records == doc.block_count + 2


class TestIncrementalUnderStego:
    def test_cdelta_rewrite_tracks_server(self):
        doc = make_doc("a document long enough to span several blocks")
        header_chars = doc._header.wire_length
        server = stego_wrap(doc.wire())
        for delta in [Delta.insertion(5, "NEW"), Delta.deletion(0, 9),
                      Delta.replacement(10, 4, "swap!")]:
            cdelta = doc.apply_delta(delta)
            server = stego_rewrite_cdelta(cdelta, header_chars).apply(server)
            assert server == stego_wrap(doc.wire())
        assert load_document(stego_unwrap(server),
                             key_material=KEYS).text == doc.text

    def test_recb_also_works(self):
        doc = make_doc("recb under stego", scheme="recb", b=4)
        header_chars = doc._header.wire_length
        server = stego_wrap(doc.wire())
        cdelta = doc.insert(4, "xyz")
        server = stego_rewrite_cdelta(cdelta, header_chars).apply(server)
        assert server == stego_wrap(doc.wire())


class TestStrictness:
    def test_rejects_unknown_word(self):
        stego = stego_wrap(make_doc().wire())
        broken = "qqqqq " + stego[WORD_CHARS:]
        with pytest.raises(CiphertextFormatError):
            stego_unwrap(broken)

    def test_rejects_misaligned_text(self):
        stego = stego_wrap(make_doc().wire())
        with pytest.raises(CiphertextFormatError):
            stego_unwrap(stego[1:])

    def test_rejects_truncated_records(self):
        stego = stego_wrap(make_doc().wire())
        with pytest.raises(CiphertextFormatError):
            stego_unwrap(stego[:-WORD_CHARS])


class TestDetectorEvasion:
    def test_wire_scores_high(self):
        assert encryption_score(make_doc().wire()) > ENCRYPTION_THRESHOLD

    def test_stego_scores_low(self):
        stego = stego_wrap(make_doc("x" * 500).wire())
        assert encryption_score(stego) < ENCRYPTION_THRESHOLD

    def test_prose_scores_low(self):
        from repro.workloads.documents import small_document
        assert encryption_score(small_document(1)) < ENCRYPTION_THRESHOLD

    def test_base32_wall_scores_high(self):
        assert encryption_score("A2B3C4D5E6F7" * 50) > ENCRYPTION_THRESHOLD

    def test_empty_scores_zero(self):
        assert encryption_score("") == 0.0


class TestStegoRewritePaths:
    def test_delete_everything_under_stego(self):
        """The full-rewrite cdelta (empty-document transition) is
        header-retaining and record-aligned, so it stego-rewrites too."""
        doc = make_doc("short doc", scheme="rpc")
        header_chars = doc._header.wire_length
        server = stego_wrap(doc.wire())
        cdelta = doc.delete(0, doc.char_length)
        server = stego_rewrite_cdelta(cdelta, header_chars).apply(server)
        assert server == stego_wrap(doc.wire())
        cdelta = doc.insert(0, "reborn")
        server = stego_rewrite_cdelta(cdelta, header_chars).apply(server)
        assert server == stego_wrap(doc.wire())
        assert load_document(stego_unwrap(server),
                             key_material=KEYS).text == "reborn"

    def test_header_splitting_cdelta_rejected(self):
        """A cdelta that would cut through the header (e.g. a rekey)
        cannot be stego-rewritten and must fail loudly."""
        from repro.core.delta import Delete as D, Delta as Dl, Insert as I
        doc = make_doc()
        bad = Dl([D(5), I("XXXXX")])  # touches the header region
        with pytest.raises(CiphertextFormatError):
            stego_rewrite_cdelta(bad, doc._header.wire_length)
