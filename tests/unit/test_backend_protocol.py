"""Unit contract of the ServiceBackend seam (repro.services.backend).

The shared client core and the replication facade are written against
this protocol; these tests pin the per-provider behaviours they rely
on — capability flags, request classification, session rewriting, the
paragraph bijection, and the raw-bytes guarantee of ``store_request``.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.net.http import HttpResponse
from repro.services import registry
from repro.services.backend import (
    BESPIN,
    BUZZWORD,
    GDOCS,
    KIND_OPEN,
    KIND_OTHER,
    KIND_READ,
    KIND_SAVE_DELTA,
    KIND_SAVE_FULL,
    ServiceBackend,
    join_paragraphs,
    split_paragraphs,
)
from repro.services.buzzword import document_xml, text_runs
from repro.services.gdocs import protocol

ALL = (GDOCS, BESPIN, BUZZWORD)


@pytest.mark.parametrize("backend", ALL, ids=lambda b: b.name)
def test_every_backend_satisfies_the_protocol(backend):
    assert isinstance(backend, ServiceBackend)


def test_capability_flags_match_the_paper():
    """SIV-A gives gdocs the full protocol; SIII found Bespin and
    Buzzword re-sending everything with no sessions or revisions."""
    assert GDOCS.capabilities.incremental_updates
    assert GDOCS.capabilities.revisioned
    assert GDOCS.capabilities.sessions
    assert GDOCS.capabilities.idempotency_keys
    for backend in (BESPIN, BUZZWORD):
        caps = backend.capabilities
        assert not caps.incremental_updates
        assert not caps.revisioned
        assert not caps.sessions
        assert not caps.idempotency_keys


@pytest.mark.parametrize("backend", (BESPIN, BUZZWORD),
                         ids=lambda b: b.name)
def test_whole_file_backends_reject_delta_saves(backend):
    with pytest.raises(ProtocolError):
        backend.delta_save_request("doc", None, 0, "delta")


# -- classification ----------------------------------------------------------


def test_gdocs_classification():
    assert GDOCS.classify(GDOCS.open_request("d")) == KIND_OPEN
    assert GDOCS.classify(GDOCS.fetch_request("d")) == KIND_READ
    assert GDOCS.classify(
        GDOCS.full_save_request("d", "s", 0, "body")) == KIND_SAVE_FULL
    assert GDOCS.classify(
        GDOCS.delta_save_request("d", "s", 1, "=0\ti\thi")) == KIND_SAVE_DELTA


def test_bespin_classification():
    assert BESPIN.classify(BESPIN.open_request("p")) == KIND_READ
    assert BESPIN.classify(
        BESPIN.full_save_request("p", None, 0, "body")) == KIND_SAVE_FULL
    other = GDOCS.open_request("p")  # a gdocs URL is not a Bespin one
    assert BESPIN.classify(other) == KIND_OTHER


def test_buzzword_classification():
    assert BUZZWORD.classify(BUZZWORD.open_request("n")) == KIND_READ
    assert BUZZWORD.classify(
        BUZZWORD.full_save_request("n", None, 0, "text")) == KIND_SAVE_FULL
    assert BUZZWORD.classify(GDOCS.open_request("n")) == KIND_OTHER


@pytest.mark.parametrize("backend", ALL, ids=lambda b: b.name)
def test_doc_id_round_trips_through_requests(backend):
    for build in (backend.open_request, backend.fetch_request):
        assert backend.doc_id_of(build("some/doc")) == "some/doc"
    save = backend.full_save_request("some/doc", "sid", 3, "content")
    assert backend.doc_id_of(save) == "some/doc"


# -- session rewriting -------------------------------------------------------


def test_gdocs_rewrite_session_substitutes_sid_and_rev():
    save = GDOCS.full_save_request("d", "old-sid", 1, "content")
    rewritten = GDOCS.rewrite_session(save, "new-sid", 9)
    form = rewritten.form
    assert form[protocol.F_SID] == "new-sid"
    assert form[protocol.F_REV] == "9"
    assert form[protocol.F_DOC_CONTENTS] == "content"


@pytest.mark.parametrize("backend", (BESPIN, BUZZWORD),
                         ids=lambda b: b.name)
def test_sessionless_rewrite_is_identity(backend):
    save = backend.full_save_request("d", None, 0, "content")
    assert backend.rewrite_session(save, "sid", 9) is save
    assert backend.session_of_open(HttpResponse(200, "x")) is None


# -- parsing -----------------------------------------------------------------


@pytest.mark.parametrize("backend", (BESPIN, BUZZWORD),
                         ids=lambda b: b.name)
def test_missing_document_opens_empty(backend):
    gone = HttpResponse(404, "no such thing")
    assert backend.is_missing(gone)
    assert backend.parse_open("d", gone).content == ""
    assert backend.parse_fetch("d", gone, 5).content == ""
    assert backend.content_of_open(gone) == ""


def test_gdocs_open_parse_rejects_mangled_acks():
    with pytest.raises(ProtocolError):
        GDOCS.parse_open("d", HttpResponse(500, "boom"))
    with pytest.raises(ProtocolError):
        GDOCS.parse_open("d", HttpResponse(200, "not&a=form"))


def test_synthesize_open_round_trips():
    for backend, sid, rev in ((GDOCS, "s", 4), (BESPIN, "", -1),
                              (BUZZWORD, "", -1)):
        fake = backend.synthesize_open("d", sid, rev, "stored-bytes")
        assert backend.content_of_open(fake) == "stored-bytes"


def test_buzzword_text_and_paragraphs_are_bijective():
    for paragraphs in ([], ["one"], ["one", ""], ["", ""],
                       ["a", "b", "c"]):
        assert split_paragraphs(join_paragraphs(paragraphs)) == paragraphs


def test_buzzword_full_save_frames_and_parse_unframes():
    text = "first paragraph\nsecond paragraph"
    save = BUZZWORD.full_save_request("n", None, 0, text)
    assert text_runs(save.body) == ["first paragraph", "second paragraph"]
    opened = BUZZWORD.parse_open("n", HttpResponse(200, save.body))
    assert opened.content == text


def test_buzzword_store_request_keeps_raw_bytes():
    """Healing copies *stored* bytes: re-framing XML through the
    paragraph splitter would double-wrap it."""
    stored = document_xml(["CIPHERTEXTRUN"])
    raw = BUZZWORD.store_request("n", None, 0, stored)
    assert raw.body == stored


def test_rev_bookkeeping_per_backend():
    ack = HttpResponse(
        200, f"{protocol.A_REV}=7&{protocol.A_CONFLICT}=0")
    assert GDOCS.rev_of_save(ack, 3) == 7
    assert not GDOCS.save_conflict(ack)
    flat = HttpResponse(200, "")
    for backend in (BESPIN, BUZZWORD):
        assert backend.rev_of_save(flat, 3) == 3
        assert not backend.save_conflict(flat)
        assert backend.parse_save(flat).rev is None
        assert backend.ack_consistent(backend.parse_save(flat), "x") is None


# -- the registry ------------------------------------------------------------


def test_registry_names_and_factories():
    assert registry.SERVICE_NAMES == ("gdocs", "bespin", "buzzword",
                                      "replicated")
    for name in registry.SERVICE_NAMES:
        backend = registry.backend_for(name)
        assert isinstance(backend, ServiceBackend)
        server = registry.make_server(name)
        assert callable(server)
    # the facade speaks gdocs toward the client
    assert registry.backend_for("replicated") is GDOCS


def test_registry_rejects_unknown_services():
    with pytest.raises(ValueError):
        registry.backend_for("etherpad")
    with pytest.raises(ValueError):
        registry.make_server("etherpad")
    with pytest.raises(ValueError):
        registry.decrypt_view("etherpad", "x", "pw")
