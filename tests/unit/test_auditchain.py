"""The audit-chain core: hash-link algebra, append-only discipline,
self-verification, and the wire codec.

These are the properties the workspace's rollback detection rests on
(docs/security.md).  One deliberate negative result is pinned too: a
wholesale forgery *does* self-verify — which is exactly why the client
keeps a ``(rev, link)`` trust anchor rather than trusting consistency
alone.
"""

from __future__ import annotations

import pytest

from repro.core.auditchain import (
    GENESIS_LINK,
    AuditChain,
    AuditEntry,
    decode_entries,
    encode_entries,
    link_hash,
    verify_entries,
)


def _chain(depth: int) -> AuditChain:
    chain = AuditChain()
    for rev in range(1, depth + 1):
        chain.append(rev, f"hash-{rev}")
    return chain


class TestLinkAlgebra:
    def test_link_hash_is_deterministic_and_position_bound(self):
        a = link_hash(GENESIS_LINK, 1, "abc")
        assert a == link_hash(GENESIS_LINK, 1, "abc")
        assert a != link_hash(GENESIS_LINK, 2, "abc")
        assert a != link_hash(GENESIS_LINK, 1, "abd")
        assert a != link_hash(a, 1, "abc")
        assert len(a) == 64

    def test_appends_chain_from_genesis(self):
        chain = _chain(3)
        entries = chain.entries
        assert entries[0].link == link_hash(GENESIS_LINK, 1, "hash-1")
        assert entries[1].link == link_hash(entries[0].link, 2, "hash-2")
        assert chain.head == entries[-1]
        assert len(chain) == 3

    def test_empty_chain_has_no_head(self):
        chain = AuditChain()
        assert chain.head is None
        assert chain.entries == ()
        assert len(chain) == 0

    def test_append_only_rejects_rewinds_and_repeats(self):
        chain = _chain(2)
        with pytest.raises(ValueError, match="append-only"):
            chain.append(2, "again")
        with pytest.raises(ValueError, match="append-only"):
            chain.append(1, "rewound")
        chain.append(5, "gap is fine")  # revision gaps are legal


class TestVerification:
    def test_honest_chain_verifies_clean(self):
        assert verify_entries(_chain(10).entries) == []
        assert verify_entries([]) == []

    def test_tampered_hash_breaks_its_link(self):
        entries = list(_chain(3).entries)
        victim = entries[1]
        entries[1] = AuditEntry(victim.rev, "tampered", victim.link)
        problems = verify_entries(entries)
        assert any("entry 1" in p for p in problems)

    def test_spliced_link_breaks_the_successor(self):
        """Rewriting a middle link invalidates everything after it —
        the collapse-to-one-head property."""
        entries = list(_chain(3).entries)
        forged = link_hash(GENESIS_LINK, entries[1].rev, "other")
        entries[1] = AuditEntry(entries[1].rev,
                                entries[1].ciphertext_hash, forged)
        problems = verify_entries(entries)
        assert len(problems) >= 2  # entry 1 and entry 2 both fail

    def test_non_advancing_revisions_are_flagged(self):
        entries = [
            AuditEntry(2, "h", link_hash(GENESIS_LINK, 2, "h")),
        ]
        entries.append(AuditEntry(
            2, "i", link_hash(entries[0].link, 2, "i")))
        problems = verify_entries(entries)
        assert any("does not advance" in p for p in problems)

    def test_wholesale_forgery_self_verifies(self):
        """An adversary who recomputes the whole chain over rolled-back
        content produces a *clean* chain — self-consistency cannot see
        it.  Only the trust anchor (tests in test_workspace.py) can."""
        honest = _chain(5)
        forged = AuditChain()
        for rev in range(1, 6):
            forged.append(rev, f"rolled-back-{rev}")
        assert verify_entries(forged.entries) == []
        assert forged.head.link != honest.head.link


class TestCodec:
    def test_round_trip(self):
        entries = _chain(4).entries
        assert tuple(decode_entries(encode_entries(entries))) == entries

    def test_empty(self):
        assert encode_entries(()) == ""
        assert decode_entries("") == []

    def test_malformed_raises_value_error(self):
        with pytest.raises(ValueError):
            decode_entries("not-a-triple")
        with pytest.raises(ValueError):
            decode_entries("x:y:z")  # rev is not an int
