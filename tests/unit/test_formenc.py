"""Form/percent encoding round trips and error handling."""

import pytest

from repro.encoding.formenc import encode_form, parse_form, quote, unquote
from repro.errors import ProtocolError


class TestQuote:
    @pytest.mark.parametrize("text", [
        "", "plain", "with space", "tab\tand\nnewline",
        "=&%+?#", "unicode: é 中文 🎉", "a" * 500,
    ])
    def test_round_trip(self, text):
        assert unquote(quote(text)) == text

    def test_space_becomes_plus(self):
        assert quote("a b") == "a+b"

    def test_plus_is_escaped(self):
        assert "+" not in quote("a+b").replace("%2B", "")

    def test_unreserved_untouched(self):
        text = "AZaz09-_.~*"
        assert quote(text) == text

    def test_no_plus_mode(self):
        assert quote("a b", plus_spaces=False) == "a%20b"
        assert unquote("a%20b", plus_spaces=False) == "a b"


class TestUnquoteErrors:
    def test_truncated_escape(self):
        with pytest.raises(ProtocolError):
            unquote("abc%2")

    def test_invalid_hex(self):
        with pytest.raises(ProtocolError):
            unquote("%zz")

    def test_invalid_utf8(self):
        with pytest.raises(ProtocolError):
            unquote("%ff%fe")


class TestForm:
    def test_round_trip(self):
        fields = {"docContents": "hello & goodbye", "rev": "3",
                  "delta": "=2\t+x y", "weird key": "=value="}
        assert parse_form(encode_form(fields)) == fields

    def test_preserves_order(self):
        body = encode_form({"b": "1", "a": "2"})
        assert body.startswith("b=1")

    def test_empty_body(self):
        assert parse_form("") == {}

    def test_empty_value(self):
        assert parse_form("k=") == {"k": ""}

    def test_missing_equals_rejected(self):
        with pytest.raises(ProtocolError):
            parse_form("justakey")

    def test_last_key_wins(self):
        assert parse_form("k=1&k=2") == {"k": "2"}
