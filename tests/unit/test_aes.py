"""AES known-answer and structural tests (FIPS-197, NIST SP 800-38A)."""

import binascii

import pytest

from repro.crypto.aes import AES, INV_SBOX, SBOX, expand_key, gf_mul
from repro.crypto.selftest import FIPS_197_VECTORS, run_selftest
from repro.errors import BlockSizeError, KeySizeError

h = binascii.unhexlify

FIPS_PLAINTEXT = h("00112233445566778899aabbccddeeff")

# NIST SP 800-38A F.1.1 (AES-128-ECB) block vectors
NIST_ECB_128 = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]
NIST_KEY_128 = h("2b7e151628aed2a6abf7158809cf4f3c")


class TestKnownAnswers:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_197_VECTORS)
    def test_fips_197_appendix_c(self, key_hex, ct_hex):
        cipher = AES(h(key_hex))
        assert cipher.encrypt_block(FIPS_PLAINTEXT) == h(ct_hex)
        assert cipher.decrypt_block(h(ct_hex)) == FIPS_PLAINTEXT

    @pytest.mark.parametrize("pt_hex,ct_hex", NIST_ECB_128)
    def test_nist_sp800_38a_ecb(self, pt_hex, ct_hex):
        cipher = AES(NIST_KEY_128)
        assert cipher.encrypt_block(h(pt_hex)) == h(ct_hex)
        assert cipher.decrypt_block(h(ct_hex)) == h(pt_hex)

    def test_fips_197_appendix_b(self):
        cipher = AES(h("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(h("3243f6a8885a308d313198a2e0370734"))
        assert ct == h("3925841d02dc09fbdc118597196a0b32")

    def test_selftest_passes(self):
        run_selftest()


class TestSbox:
    def test_known_entries(self):
        # FIPS-197 Figure 7 spot checks
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


class TestGaloisField:
    def test_identity(self):
        for a in (0, 1, 0x53, 0xFF):
            assert gf_mul(a, 1) == a

    def test_known_product(self):
        # 0x57 * 0x83 = 0xC1 (FIPS-197 section 4.2 example)
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_commutative(self):
        for a, b in [(3, 7), (0x1B, 0x80), (0xAA, 0x55)]:
            assert gf_mul(a, b) == gf_mul(b, a)


class TestKeySchedule:
    def test_aes128_first_round_key_is_key(self):
        key = bytes(range(16))
        words = expand_key(key)
        assert words[0] == int.from_bytes(key[0:4], "big")
        assert len(words) == 44

    def test_aes192_length(self):
        assert len(expand_key(bytes(24))) == 52

    def test_aes256_length(self):
        assert len(expand_key(bytes(32))) == 60

    @pytest.mark.parametrize("bad", [0, 1, 15, 17, 31, 33, 64])
    def test_bad_key_size(self, bad):
        with pytest.raises(KeySizeError):
            AES(bytes(bad))


class TestRoundTrip:
    def test_random_blocks(self):
        import os
        cipher = AES(os.urandom(16))
        for _ in range(50):
            block = os.urandom(16)
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_encrypt_is_permutation_like(self):
        cipher = AES(bytes(16))
        seen = {cipher.encrypt_block(i.to_bytes(16, "big")) for i in range(64)}
        assert len(seen) == 64

    @pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 32])
    def test_bad_block_size(self, bad_len):
        cipher = AES(bytes(16))
        with pytest.raises(BlockSizeError):
            cipher.encrypt_block(bytes(bad_len))
        with pytest.raises(BlockSizeError):
            cipher.decrypt_block(bytes(bad_len))

    def test_key_sensitivity(self):
        a = AES(bytes(16))
        b = AES(bytes(15) + b"\x01")
        block = bytes(16)
        assert a.encrypt_block(block) != b.encrypt_block(block)
