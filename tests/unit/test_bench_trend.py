"""The bench-trend aggregator: flattening, delta math, discovery.

The tool reads whatever ``BENCH_*.json`` sidecars exist; the tests
point it at a synthetic repo root so they pin the behaviour without
depending on which benchmarks have been run here.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parents[2]
         / "tools" / "bench_trend.py")


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("bench_trend", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_flatten_keeps_numbers_drops_strings_and_bools(trend):
    flat = trend.flatten({
        "a": {"b": 1, "c": 2.5, "s": "tag", "ok": True},
        "top": 7,
    })
    assert flat == {"a.b": 1.0, "a.c": 2.5, "top": 7.0}
    assert trend.flatten("not a dict") == {}


def test_rows_pair_baseline_with_current(trend, tmp_path):
    (tmp_path / "BENCH_x.json").write_text(json.dumps({
        "schema": "x/v1",
        "baseline": {"cell": {"eps": 100.0}, "old_only": 1},
        "current": {"cell": {"eps": 150.0}, "new_only": 2},
    }))
    rows = trend.sidecar_rows(tmp_path / "BENCH_x.json")
    by_cell = {row["cell"]: row for row in rows}
    assert by_cell["cell.eps"] == {
        "sidecar": "BENCH_x.json", "cell": "cell.eps",
        "baseline": 100.0, "current": 150.0}
    # cells present on only one side still show up
    assert by_cell["old_only"]["current"] is None
    assert by_cell["new_only"]["baseline"] is None
    assert trend._delta(by_cell["cell.eps"]) == "+50.0%"
    assert trend._delta(by_cell["old_only"]) == "-"


def test_collect_discovers_and_filters(trend, tmp_path, monkeypatch):
    monkeypatch.setattr(trend, "REPO", tmp_path)
    for name in ("BENCH_a.json", "BENCH_b.json"):
        (tmp_path / name).write_text(json.dumps(
            {"baseline": None, "current": {"v": 1}}))
    (tmp_path / "not_a_sidecar.json").write_text("{}")
    rows = trend.collect()
    assert {row["sidecar"] for row in rows} == \
        {"BENCH_a.json", "BENCH_b.json"}
    only = trend.collect(only="BENCH_a*")
    assert {row["sidecar"] for row in only} == {"BENCH_a.json"}


def test_unreadable_sidecar_becomes_a_row_not_a_crash(trend, tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{nope")
    rows = trend.sidecar_rows(bad)
    assert rows[0]["cell"] == "<unreadable>"


def test_render_and_main_exit_clean(trend, tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(trend, "REPO", tmp_path)
    assert trend.main([]) == 0
    assert "no BENCH_" in capsys.readouterr().out
    (tmp_path / "BENCH_a.json").write_text(json.dumps(
        {"baseline": {"v": 2}, "current": {"v": 1}}))
    assert trend.main([]) == 0
    out = capsys.readouterr().out
    assert "BENCH_a.json" in out and "-50.0%" in out
    assert trend.main(["--json"]) == 0
    assert json.loads(capsys.readouterr().out)[0]["cell"] == "v"


def test_against_the_real_repo_root(trend):
    """Whatever sidecars this checkout has must aggregate cleanly."""
    for row in trend.collect():
        assert "error" not in row, row
