"""Delta derivation: simple trim and Myers diff."""

import random

import pytest

from repro.workloads.diff import derive_delta, myers_delta, simple_delta


class TestSimpleDelta:
    def test_equal_strings(self):
        assert simple_delta("abc", "abc").is_identity

    def test_pure_insert(self):
        delta = simple_delta("ab", "aXb")
        assert delta.apply("ab") == "aXb"
        assert delta.chars_deleted == 0

    def test_pure_delete(self):
        delta = simple_delta("aXb", "ab")
        assert delta.apply("aXb") == "ab"
        assert delta.chars_inserted == 0

    def test_total_replacement(self):
        delta = simple_delta("aaaa", "bbbb")
        assert delta.apply("aaaa") == "bbbb"

    def test_empty_to_text(self):
        assert simple_delta("", "abc").apply("") == "abc"

    def test_text_to_empty(self):
        assert simple_delta("abc", "").apply("abc") == ""

    def test_overlapping_prefix_suffix(self):
        # old="aa", new="aaa": prefix+suffix overlap must not double-count
        delta = simple_delta("aa", "aaa")
        assert delta.apply("aa") == "aaa"


class TestMyersDelta:
    def test_minimality_on_single_edit(self):
        delta = myers_delta("abcdef", "abXcdef")
        assert delta.chars_inserted == 1 and delta.chars_deleted == 0

    def test_minimality_on_substitution(self):
        delta = myers_delta("abcdef", "abXdef")
        assert delta.chars_inserted == 1 and delta.chars_deleted == 1

    def test_correctness_random(self):
        rng = random.Random(17)
        for _ in range(200):
            old = "".join(rng.choice("abc") for _ in range(rng.randint(0, 40)))
            new = "".join(rng.choice("abc") for _ in range(rng.randint(0, 40)))
            assert myers_delta(old, new).apply(old) == new

    def test_bounded_falls_back(self):
        old = "a" * 50
        new = "b" * 50
        delta = myers_delta(old, new, max_distance=5)
        assert delta.apply(old) == new  # still correct via fallback

    def test_never_worse_than_simple(self):
        rng = random.Random(23)
        for _ in range(50):
            old = "".join(rng.choice("abcd") for _ in range(30))
            new = list(old)
            for _ in range(4):
                idx = rng.randrange(len(new))
                new[idx] = rng.choice("abcd")
            new = "".join(new)
            m = myers_delta(old, new)
            s = simple_delta(old, new)
            assert (m.chars_inserted + m.chars_deleted
                    <= s.chars_inserted + s.chars_deleted)


class TestDeriveDelta:
    def test_round_trip(self):
        old = "the quick brown fox"
        new = "the slow brown foxes"
        assert derive_delta(old, new).apply(old) == new

    def test_handles_unrelated_inputs(self):
        old = "x" * 2000
        new = "y" * 2000
        assert derive_delta(old, new).apply(old) == new
