"""Documentation discipline: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this test
makes the requirement self-enforcing across the whole package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

IGNORED_MODULE_PARTS = ("__main__",)


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part in info.name for part in IGNORED_MODULE_PARTS):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_public_classes_and_functions_documented(module):
    undocumented = [
        name for name, obj in _public_members(module)
        if not (obj.__doc__ and obj.__doc__.strip())
    ]
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_public_methods_documented(module):
    missing = []
    for cls_name, cls in _public_members(module):
        if not inspect.isclass(cls):
            continue
        for name, member in vars(cls).items():
            if name.startswith("_") or not inspect.isfunction(member):
                continue
            if not (member.__doc__ and member.__doc__.strip()):
                missing.append(f"{cls_name}.{name}")
    assert not missing, (
        f"{module.__name__}: missing method docstrings on {missing}"
    )
