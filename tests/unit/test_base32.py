"""Base32 codec vs the standard library, plus strictness checks."""

import base64
import os

import pytest

from repro.encoding import base32
from repro.errors import CiphertextFormatError


class TestAgainstStdlib:
    @pytest.mark.parametrize("n", list(range(0, 21)) + [40, 63, 100])
    def test_padded_encoding_matches_stdlib(self, n):
        data = os.urandom(n)
        assert base32.encode(data, pad=True) == base64.b32encode(data).decode()

    @pytest.mark.parametrize("n", list(range(0, 21)))
    def test_decode_accepts_stdlib_output(self, n):
        data = os.urandom(n)
        assert base32.decode(base64.b32encode(data).decode()) == data


class TestRoundTrip:
    @pytest.mark.parametrize("n", list(range(0, 30)))
    def test_unpadded_round_trip(self, n):
        data = os.urandom(n)
        encoded = base32.encode(data)
        assert "=" not in encoded
        assert base32.decode(encoded) == data

    @pytest.mark.parametrize("n", list(range(0, 30)))
    def test_encoded_length_formula(self, n):
        assert base32.encoded_length(n) == len(base32.encode(os.urandom(n)))


class TestStrictness:
    def test_rejects_bad_character(self):
        with pytest.raises(CiphertextFormatError):
            base32.decode("ABC1")  # '1' is not in the alphabet

    def test_rejects_lowercase(self):
        with pytest.raises(CiphertextFormatError):
            base32.decode("abcd")

    @pytest.mark.parametrize("tail_len", [1, 3, 6])
    def test_rejects_impossible_tail_lengths(self, tail_len):
        with pytest.raises(CiphertextFormatError):
            base32.decode("A" * (8 + tail_len))

    def test_rejects_noncanonical_tail_bits(self):
        # "BB" decodes 1 byte but the second char carries spare bits
        # that a canonical encoder would zero.
        with pytest.raises(CiphertextFormatError):
            base32.decode("BB")

    def test_empty(self):
        assert base32.decode("") == b""
        assert base32.encode(b"") == ""
