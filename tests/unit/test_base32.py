"""Base32 codec vs the standard library, plus strictness checks."""

import base64
import os

import pytest

from repro.encoding import base32
from repro.errors import CiphertextFormatError


class TestAgainstStdlib:
    @pytest.mark.parametrize("n", list(range(0, 21)) + [40, 63, 100])
    def test_padded_encoding_matches_stdlib(self, n):
        data = os.urandom(n)
        assert base32.encode(data, pad=True) == base64.b32encode(data).decode()

    @pytest.mark.parametrize("n", list(range(0, 21)))
    def test_decode_accepts_stdlib_output(self, n):
        data = os.urandom(n)
        assert base32.decode(base64.b32encode(data).decode()) == data


class TestRoundTrip:
    @pytest.mark.parametrize("n", list(range(0, 30)))
    def test_unpadded_round_trip(self, n):
        data = os.urandom(n)
        encoded = base32.encode(data)
        assert "=" not in encoded
        assert base32.decode(encoded) == data

    @pytest.mark.parametrize("n", list(range(0, 30)))
    def test_encoded_length_formula(self, n):
        assert base32.encoded_length(n) == len(base32.encode(os.urandom(n)))


class TestStrictness:
    def test_rejects_bad_character(self):
        with pytest.raises(CiphertextFormatError):
            base32.decode("ABC1")  # '1' is not in the alphabet

    def test_rejects_lowercase(self):
        with pytest.raises(CiphertextFormatError):
            base32.decode("abcd")

    @pytest.mark.parametrize("tail_len", [1, 3, 6])
    def test_rejects_impossible_tail_lengths(self, tail_len):
        with pytest.raises(CiphertextFormatError):
            base32.decode("A" * (8 + tail_len))

    def test_rejects_noncanonical_tail_bits(self):
        # "BB" decodes 1 byte but the second char carries spare bits
        # that a canonical encoder would zero.
        with pytest.raises(CiphertextFormatError):
            base32.decode("BB")

    def test_empty(self):
        assert base32.decode("") == b""
        assert base32.encode(b"") == ""


class TestFastPathAgainstScalar:
    """The translate/int fast paths vs the scalar reference routines.

    ``encode``/``decode`` now run through ``base64.b32encode`` and a
    ``str.translate`` + ``int(s, 32)`` conversion; the original
    per-byte loops survive as ``_encode_scalar``/``_decode_scalar`` and
    define the expected behavior bit for bit — including which error a
    malformed input raises.
    """

    @pytest.mark.parametrize("pad", [False, True])
    def test_encode_matches_scalar(self, pad):
        for n in list(range(0, 41)) + [100, 1000]:
            data = os.urandom(n)
            assert base32.encode(data, pad=pad) == \
                base32._encode_scalar(data, pad=pad)

    def test_decode_matches_scalar_on_valid_input(self):
        for n in list(range(0, 41)) + [100, 1000]:
            data = os.urandom(n)
            for pad in (False, True):
                text = base32.encode(data, pad=pad)
                assert base32.decode(text) == data
                assert base32._decode_scalar(text) == data

    @pytest.mark.parametrize("text", [
        "A", "ABC", "ABCDEF",            # impossible tail lengths
        "AAAAAAAAA", "AAAAAAAAABC",      # ... after a full chunk
        "ABC1", "abcd", "MZXW6YT!",      # characters outside A-Z2-7
        "AAAA_AAA", "+AAAAAAA", " AAAAAAA",  # int()-friendly junk the
        "BB", "MZXR",                    # fast path must still reject
        "AAAAAAAABB",                    # bad tail bits after full chunk
    ])
    def test_error_parity_with_scalar(self, text):
        with pytest.raises(CiphertextFormatError) as fast:
            base32.decode(text)
        with pytest.raises(CiphertextFormatError) as scalar:
            base32._decode_scalar(text)
        assert str(fast.value) == str(scalar.value)
