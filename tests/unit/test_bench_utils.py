"""Benchmark harness helpers."""

import time

from repro.bench import Sample, Stopwatch, ms_per_char, pct, render_table


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            time.sleep(0.01)
        with watch.measure():
            time.sleep(0.01)
        assert watch.elapsed >= 0.02
        assert len(watch.laps) == 2


class TestSample:
    def test_stats(self):
        sample = Sample()
        for v in (1.0, 2.0, 3.0):
            sample.add(v)
        assert sample.mean == 2.0
        assert 0.9 < sample.dev < 1.1
        assert len(sample) == 3

    def test_empty_and_single(self):
        assert Sample().mean == 0.0
        single = Sample([5.0])
        assert single.mean == 5.0 and single.dev == 0.0


class TestFormatting:
    def test_ms_per_char(self):
        assert ms_per_char(1.0, 1000) == 1.0
        assert ms_per_char(1.0, 0) == 0.0

    def test_pct(self):
        assert pct(0.25) == "25%"
        assert pct(0.088) == "8.8%"

    def test_render_table_alignment(self):
        table = render_table(
            ["workload", "mean", "dev"],
            [["inserts only", "6.2%", ".049"], ["deletes", "3.1%", ".012"]],
            title="Fig. 5",
        )
        lines = table.splitlines()
        assert "Fig. 5" in table
        assert "inserts only" in table
        header_idx = next(
            i for i, line in enumerate(lines) if "workload" in line
        )
        assert set(lines[header_idx + 1]) == {"-"}


class TestRenderTableErrors:
    def test_ragged_row_raises_with_position(self):
        import pytest

        with pytest.raises(ValueError, match="row 1 has 2 cells, expected 3"):
            render_table(["a", "b", "c"],
                         [["1", "2", "3"], ["1", "2"]])


class TestMetricTracking:
    def test_lap_metrics_record_counter_deltas(self):
        from repro.bench import metrics_cell
        from repro.obs import counter

        probe = counter("test_bench.probe")
        watch = Stopwatch(track=("test_bench.probe",))
        with watch.measure():
            probe.inc(5)
        with watch.measure():
            probe.inc(2)
        assert [lap["test_bench.probe"] for lap in watch.lap_metrics] == [5, 2]
        assert watch.metric_total("test_bench.probe") == 7
        assert metrics_cell(watch.lap_metrics[0]) == "probe=5"
