"""IndexedSkipList unit tests (randomized cross-checks live in
tests/property)."""

import random

import pytest

from repro.datastructures.indexed_skiplist import IndexedSkipList
from repro.errors import DataStructureError


@pytest.fixture
def sl():
    return IndexedSkipList(rng=random.Random(42))


def fill(sl, widths):
    for i, w in enumerate(widths):
        sl.insert(i, f"b{i}", w)


class TestBasics:
    def test_empty(self, sl):
        assert len(sl) == 0
        assert sl.total_chars == 0
        assert list(sl.items()) == []
        sl.checkrep()

    def test_single_insert(self, sl):
        sl.insert(0, "hello", 5)
        assert len(sl) == 1
        assert sl.total_chars == 5
        assert sl.get(0) == ("hello", 5)
        sl.checkrep()

    def test_insert_order(self, sl):
        fill(sl, [3, 4, 5])
        assert [v for v in sl.values()] == ["b0", "b1", "b2"]
        assert sl.total_chars == 12

    def test_insert_at_front_and_middle(self, sl):
        fill(sl, [2, 2])
        sl.insert(0, "front", 1)
        sl.insert(2, "mid", 1)
        assert list(sl.values()) == ["front", "b0", "mid", "b1"]
        sl.checkrep()

    def test_bad_p(self):
        with pytest.raises(DataStructureError):
            IndexedSkipList(p=1.0)

    def test_negative_width_rejected(self, sl):
        with pytest.raises(DataStructureError):
            sl.insert(0, "x", -1)


class TestFindChar:
    def test_paper_example(self, sl):
        """Figure 3's document 'abcfghijk' in three blocks."""
        for i, chunk in enumerate(["abc", "fgh", "ijk"]):
            sl.insert(i, chunk, len(chunk))
        assert sl.find_char(0) == (0, 0)
        assert sl.find_char(2) == (0, 2)
        assert sl.find_char(3) == (1, 0)
        assert sl.find_char(8) == (2, 2)

    def test_insertion_like_figure_3(self, sl):
        """Insert 'xy' at index 3 of 'abcfghijk' → block split at 3."""
        for i, chunk in enumerate(["abc", "fgh", "ijk"]):
            sl.insert(i, chunk, len(chunk))
        rank, offset = sl.find_char(3)
        assert (rank, offset) == (1, 0)
        sl.insert(rank, "xy", 2)
        assert "".join(sl.values()) == "abcxyfghijk"
        assert sl.find_char(3) == (1, 0)
        assert sl.find_char(5) == (2, 0)
        sl.checkrep()

    def test_out_of_range(self, sl):
        fill(sl, [3])
        with pytest.raises(IndexError):
            sl.find_char(3)
        with pytest.raises(IndexError):
            sl.find_char(-1)

    def test_empty_list(self, sl):
        with pytest.raises(IndexError):
            sl.find_char(0)


class TestMutations:
    def test_delete_returns_value(self, sl):
        fill(sl, [1, 2, 3])
        assert sl.delete(1) == ("b1", 2)
        assert len(sl) == 2
        assert sl.total_chars == 4
        sl.checkrep()

    def test_delete_all(self, sl):
        fill(sl, [1, 2, 3])
        for _ in range(3):
            sl.delete(0)
        assert len(sl) == 0 and sl.total_chars == 0
        sl.checkrep()

    def test_replace_changes_width(self, sl):
        fill(sl, [4, 4, 4])
        sl.replace(1, "new", 7)
        assert sl.get(1) == ("new", 7)
        assert sl.total_chars == 15
        assert sl.find_char(10) == (1, 6)
        sl.checkrep()

    def test_replace_same_width(self, sl):
        fill(sl, [4])
        sl.replace(0, "swap", 4)
        assert sl.get(0) == ("swap", 4)
        sl.checkrep()

    def test_char_start(self, sl):
        fill(sl, [3, 1, 4])
        assert [sl.char_start(i) for i in range(4)] == [0, 3, 4, 8]

    def test_rank_bounds(self, sl):
        fill(sl, [1])
        with pytest.raises(IndexError):
            sl.get(1)
        with pytest.raises(IndexError):
            sl.delete(1)
        with pytest.raises(IndexError):
            sl.insert(2, "x", 1)


class TestScale:
    def test_thousand_blocks_logarithmic_shape(self):
        sl = IndexedSkipList(rng=random.Random(1))
        for i in range(1000):
            sl.insert(i, i, 1 + (i % 8))
        sl.checkrep()
        assert len(sl) == 1000
        total = sl.total_chars
        rank, offset = sl.find_char(total - 1)
        assert rank == 999


class TestExtend:
    def test_extend_matches_repeated_insert(self):
        import random as _r
        a = IndexedSkipList(rng=_r.Random(9))
        b = IndexedSkipList(rng=_r.Random(9))
        items = [(f"v{i}", 1 + i % 8) for i in range(200)]
        for i, (v, w) in enumerate(items):
            a.insert(i, v, w)
        b.extend(items)
        assert list(a.items()) == list(b.items())
        b.checkrep()

    def test_extend_onto_existing(self):
        import random as _r
        sl = IndexedSkipList(rng=_r.Random(10))
        sl.insert(0, "pre", 3)
        sl.extend([("a", 2), ("b", 5)])
        assert list(sl.items()) == [("pre", 3), ("a", 2), ("b", 5)]
        assert sl.total_chars == 10
        sl.checkrep()

    def test_extend_empty(self, sl):
        sl.extend([])
        assert len(sl) == 0
        sl.checkrep()

    def test_extend_then_mutate(self):
        import random as _r
        sl = IndexedSkipList(rng=_r.Random(11))
        sl.extend([(i, 2) for i in range(100)])
        sl.insert(50, "mid", 1)
        sl.delete(0)
        sl.replace(10, "swap", 7)
        sl.checkrep()

    def test_extend_negative_width(self, sl):
        with pytest.raises(DataStructureError):
            sl.extend([("x", -1)])
