"""Baselines: CoClo whole-document re-encryption and the naive
fixed-alignment store."""

import pytest

from repro.baselines import CocloDocument, NaiveAlignedDocument
from repro.core import Delta


@pytest.fixture
def coclo(keys, nonce_rng):
    return CocloDocument("the whole document gets re-encrypted",
                         key_material=keys, rng=nonce_rng)


@pytest.fixture
def naive(keys, nonce_rng):
    return NaiveAlignedDocument(
        "fixed alignment means realignment on every length change",
        key_material=keys, block_chars=8, rng=nonce_rng,
    )


class TestCoclo:
    def test_server_tracks_cdeltas(self, coclo):
        server = coclo.wire()
        for delta in [Delta.insertion(4, "XYZ"), Delta.deletion(0, 2),
                      Delta.replacement(5, 3, "abc")]:
            server = coclo.apply_delta(delta).apply(server)
            assert server == coclo.wire()

    def test_every_update_replaces_everything(self, coclo):
        cdelta = coclo.insert(0, "x")
        from repro.core.delta import Delete
        deleted = sum(
            op.count for op in cdelta.ops if isinstance(op, Delete)
        )
        # the whole previous record area is deleted
        assert deleted >= coclo.wire_length() - 200

    def test_text_and_metrics(self, coclo):
        assert "re-encrypted" in coclo.text
        assert coclo.blowup() > 1
        assert coclo.wire_length() == len(coclo.wire())

    def test_requires_credentials(self):
        with pytest.raises(ValueError):
            CocloDocument("x")


class TestNaiveAligned:
    def test_server_tracks_cdeltas(self, naive):
        server = naive.wire()
        for delta in [Delta.insertion(3, "12"), Delta.deletion(10, 4),
                      Delta.insertion(0, "front")]:
            server = naive.apply_delta(delta).apply(server)
            assert server == naive.wire()

    def test_front_insert_reencrypts_everything(self, naive):
        before = naive.blocks_reencrypted
        naive.insert(0, "x")
        reencrypted = naive.blocks_reencrypted - before
        # every block from position 0 onwards (all of them)
        assert reencrypted >= (naive.char_length - 1) // 8

    def test_back_insert_reencrypts_little(self, naive):
        before = naive.blocks_reencrypted
        naive.insert(naive.char_length, "x")
        assert naive.blocks_reencrypted - before <= 2

    def test_same_length_in_block_replace_is_local(self, naive):
        before = naive.blocks_reencrypted
        naive.apply_delta(Delta.replacement(1, 2, "XY"))
        assert naive.blocks_reencrypted - before == 1

    def test_identity_delta(self, naive):
        assert naive.apply_delta(Delta(())) == Delta(())

    def test_requires_credentials(self):
        with pytest.raises(ValueError):
            NaiveAlignedDocument("x")
