"""EditorBuffer and the benign Google Docs client (without extension)."""

import pytest

from repro.client.editor import EditorBuffer
from repro.client.gdocs_client import GDocsClient
from repro.errors import DeltaApplicationError, SessionError
from repro.net.channel import Channel
from repro.services.gdocs.server import GDocsServer


class TestEditorBuffer:
    def test_insert_delete_replace(self):
        buf = EditorBuffer("hello world")
        buf.insert(5, ",")
        assert buf.text == "hello, world"
        buf.delete(0, 7)
        assert buf.text == "world"
        buf.replace(0, 5, "earth")
        assert buf.text == "earth"

    def test_bounds(self):
        buf = EditorBuffer("abc")
        with pytest.raises(DeltaApplicationError):
            buf.insert(4, "x")
        with pytest.raises(DeltaApplicationError):
            buf.delete(2, 2)

    def test_dirty_tracking(self):
        buf = EditorBuffer("abc")
        assert not buf.dirty
        buf.insert(0, "x")
        assert buf.dirty
        buf.mark_synced()
        assert not buf.dirty

    def test_pending_delta_round_trip(self):
        buf = EditorBuffer("the quick brown fox")
        buf.delete(4, 6)
        buf.insert(4, "slow ")
        delta = buf.pending_delta()
        assert delta.apply(buf.synced_text) == buf.text

    def test_resync(self):
        buf = EditorBuffer("local")
        buf.resync("authoritative")
        assert buf.text == "authoritative" and not buf.dirty

    def test_set_text_keeps_baseline(self):
        buf = EditorBuffer("base")
        buf.mark_synced()
        buf.set_text("base plus hidden")
        assert buf.dirty
        assert buf.synced_text == "base"


@pytest.fixture
def client():
    return GDocsClient(Channel(GDocsServer()), "doc")


class TestGDocsClientPlain:
    def test_open_save_cycle(self, client):
        assert client.open() == ""
        client.type_text(0, "hello")
        outcome = client.save()
        assert outcome.kind == "full" and not outcome.conflict
        client.type_text(5, " world")
        outcome = client.save()
        assert outcome.kind == "delta"
        assert client.complaints == []

    def test_save_without_session(self, client):
        with pytest.raises(SessionError):
            client.save()

    def test_noop_save_skipped(self, client):
        client.open()
        client.type_text(0, "x")
        client.save()
        assert client.save().kind == "noop"

    def test_close_flushes(self, client):
        client.open()
        client.type_text(0, "unsaved")
        client.close()
        assert not client.in_session
        # reopen sees the flushed content
        assert client.open() == "unsaved"

    def test_reopen_full_saves_again(self, client):
        """Each session's first save is a full docContents POST."""
        client.open()
        client.type_text(0, "v1")
        assert client.save().kind == "full"
        client.close()
        client.open()
        client.type_text(2, "+more")
        assert client.save().kind == "full"

    def test_hash_check_passes_plain(self, client):
        client.open()
        client.type_text(0, "consistent")
        outcome = client.save()
        assert outcome.complaints == []

    def test_refresh(self, client):
        client.open()
        client.type_text(0, "shared state")
        client.save()
        other = GDocsClient(client._channel, "doc")
        other.open()
        assert other.refresh() == "shared state"

    def test_word_count_is_client_side(self, client):
        client.open()
        client.type_text(0, "one two three")
        before = len(client._channel.exchange_log)
        assert client.word_count() == 3
        assert len(client._channel.exchange_log) == before  # no traffic


class TestConcurrentPlainClients:
    def test_conflict_resync_without_extension(self):
        """Without the extension the Ack carries usable content, so a
        conflicting client resyncs silently — collaboration works."""
        channel = Channel(GDocsServer())
        alice = GDocsClient(channel, "doc")
        bob = GDocsClient(channel, "doc")
        alice.open()
        alice.type_text(0, "alice's text")
        alice.save()
        bob.open()
        bob.type_text(0, "bob was here: ")
        bob.save()
        # alice's next delta is stale -> conflict -> silent resync
        alice.type_text(0, "more ")
        outcome = alice.save()
        assert outcome.conflict
        assert alice.complaints == []
        assert alice.editor.text == "bob was here: alice's text"
