"""The scheme registry: dispatch, errors, and extensibility."""

import pytest

from repro.core import create_document, known_schemes, load_document
from repro.core.scheme import register_scheme, scheme_factory
from repro.errors import CiphertextFormatError


class TestRegistry:
    def test_builtin_schemes_registered(self):
        assert set(known_schemes()) >= {"recb", "rpc"}

    def test_factory_dispatch(self):
        from repro.core.document import RecbDocument, RpcDocument
        assert scheme_factory("recb") is RecbDocument
        assert scheme_factory("rpc") is RpcDocument

    def test_unknown_scheme(self):
        with pytest.raises(CiphertextFormatError):
            scheme_factory("rot13")

    def test_create_document_rejects_unknown(self, keys, nonce_rng):
        with pytest.raises(CiphertextFormatError):
            create_document("x", key_material=keys, scheme="rot13",
                            rng=nonce_rng)

    def test_load_dispatches_on_header(self, keys, nonce_rng):
        for scheme in ("recb", "rpc"):
            doc = create_document("dispatch me", key_material=keys,
                                  scheme=scheme, rng=nonce_rng)
            loaded = load_document(doc.wire(), key_material=keys)
            assert loaded.scheme == scheme

    def test_load_rejects_unregistered_header_scheme(self, keys):
        bogus = "PE1-ROT13-8-64-AAAAAAAAAAAAAAAA."
        with pytest.raises(CiphertextFormatError):
            load_document(bogus, key_material=keys)

    def test_custom_scheme_registration(self, keys, nonce_rng):
        """Downstream users can register their own document class."""
        from repro.core.document import RecbDocument

        class ShoutingDocument(RecbDocument):
            """rECB, but the decrypted text comes back upper-cased."""

            @property
            def text(self) -> str:
                """The plaintext, loudly."""
                return super().text.upper()

        register_scheme("shout", ShoutingDocument)
        try:
            assert "shout" in known_schemes()
            doc = scheme_factory("shout").create(
                "quiet words", key_material=keys, rng=nonce_rng
            )
            assert doc.text == "QUIET WORDS"
        finally:
            from repro.core import scheme as scheme_module
            scheme_module._REGISTRY.pop("shout", None)
