"""EditCoalescer: a composed burst must equal the journal replayed.

The coalescing layer's correctness obligation is semantic identity —
applying the single composed delta to the burst's base text produces
exactly the text that applying every journaled delta in order would
have produced.  Everything else here (caps, flush reasons, counters,
invalidation) is the bookkeeping that keeps that property observable
and recoverable.
"""

import random

import pytest

from repro.client.coalesce import FLUSH_REASONS, EditCoalescer
from repro.client.editor import EditorBuffer
from repro.core.delta import Delta
from repro.obs import value_of


def _random_edit(rng: random.Random, length: int) -> Delta:
    """One keystroke-level delta valid against a document of ``length``."""
    kind = rng.random()
    pos = rng.randint(0, length)
    if kind < 0.5 or length == 0:
        text = "".join(rng.choice("abcdef 文😀\t%") for _ in
                       range(rng.randint(1, 6)))
        return Delta.insertion(pos, text)
    count = rng.randint(1, max(1, length - pos)) if pos < length else 0
    if count == 0:
        return Delta.insertion(pos, "x")
    if kind < 0.8:
        return Delta.deletion(pos, count)
    return Delta.replacement(pos, count, "yz")


class TestComposition:
    @pytest.mark.parametrize("seed", range(20))
    def test_burst_equals_sequential_replay(self, seed):
        rng = random.Random(seed)
        base = "".join(rng.choice("abcdefgh ") for _ in
                       range(rng.randint(0, 80)))
        journal = EditCoalescer()
        text = base
        for _ in range(rng.randint(1, 30)):
            delta = _random_edit(rng, len(text))
            text = delta.apply(text)
            assert journal.add(delta) is None  # no caps configured
        burst = journal.flush("drain")
        assert burst is not None
        assert burst.apply(base) == text
        # canonical form: no trailing retain, adjacent ops merged
        assert burst == burst.canonical()

    def test_peek_does_not_flush(self):
        journal = EditCoalescer()
        journal.add(Delta.insertion(0, "abc"))
        peeked = journal.peek()
        assert peeked.apply("") == "abc"
        assert journal.pending_ops == 1
        assert journal.flush("drain") == peeked

    def test_empty_flush_returns_none(self):
        journal = EditCoalescer()
        assert journal.flush("drain") is None
        # identity-only bursts (pure retains after cancellation) are
        # also empty: insert then delete the same text
        journal.add(Delta.insertion(0, "abc"))
        journal.add(Delta.deletion(0, 3))
        burst = journal.flush("drain")
        assert burst is None or burst.is_identity


class TestCapsAndOverflow:
    def test_ops_cap_flushes(self):
        journal = EditCoalescer(max_ops=3)
        assert journal.add(Delta.insertion(0, "a")) is None
        assert journal.add(Delta.insertion(1, "b")) is None
        burst = journal.add(Delta.insertion(2, "c"))
        assert burst is not None and burst.apply("") == "abc"
        assert journal.pending_ops == 0  # restarted

    def test_bytes_cap_flushes(self):
        journal = EditCoalescer(max_bytes=10)
        assert journal.add(Delta.insertion(0, "abcde")) is None
        burst = journal.add(Delta.insertion(5, "fghij"))
        assert burst is not None and burst.apply("") == "abcdefghij"

    def test_invalidate_overflow_mode(self):
        journal = EditCoalescer(max_ops=2, overflow="invalidate")
        journal.add(Delta.insertion(0, "a"))
        assert journal.valid
        assert journal.add(Delta.insertion(1, "b")) is None
        assert not journal.valid
        # adds are ignored while invalid; flush re-arms
        journal.add(Delta.insertion(0, "zzz"))
        assert journal.flush("drain") is None
        assert journal.valid

    def test_bad_overflow_rejected(self):
        with pytest.raises(ValueError):
            EditCoalescer(overflow="explode")


class TestFlushReasons:
    def test_unknown_reason_rejected(self):
        journal = EditCoalescer()
        journal.add(Delta.insertion(0, "a"))
        with pytest.raises(ValueError):
            journal.flush("panic")

    @pytest.mark.parametrize("reason", FLUSH_REASONS)
    def test_each_reason_counted(self, reason):
        before = value_of(f"client.coalesce.flush.{reason}")
        journal = EditCoalescer()
        journal.add(Delta.insertion(0, "a"))
        journal.flush(reason)
        assert value_of(f"client.coalesce.flush.{reason}") == before + 1

    def test_burst_and_fold_counters(self):
        bursts = value_of("client.coalesce.bursts")
        folded = value_of("client.coalesce.ops_folded")
        journal = EditCoalescer()
        journal.add(Delta.insertion(0, "a"))
        journal.add(Delta.insertion(1, "b"))
        journal.flush("save")
        journal.flush("save")  # empty: not a burst
        assert value_of("client.coalesce.bursts") == bursts + 1
        assert value_of("client.coalesce.ops_folded") == folded + 2

    def test_invalidated_counter(self):
        before = value_of("client.coalesce.invalidated")
        journal = EditCoalescer()
        journal.add(Delta.insertion(0, "a"))
        journal.invalidate()
        journal.invalidate()  # already invalid: counted once
        assert value_of("client.coalesce.invalidated") == before + 1


class TestEditorJournal:
    """EditorBuffer trusts the journal only after verifying it."""

    def test_pending_delta_comes_from_journal(self):
        buf = EditorBuffer("hello world")
        buf.insert(5, ",")
        buf.delete(0, 1)
        buf.insert(0, "H")
        delta = buf.pending_delta()
        assert delta.apply("hello world") == "Hello, world"
        assert buf._journal.valid

    def test_set_text_invalidates_and_diff_recovers(self):
        buf = EditorBuffer("abc")
        buf.insert(3, "d")
        buf.set_text("completely different")
        assert not buf._journal.valid
        delta = buf.pending_delta()
        assert delta.apply("abc") == "completely different"

    def test_corrupt_journal_falls_back_to_diff(self):
        buf = EditorBuffer("abcdef")
        buf.insert(6, "!")
        # sabotage: journal an edit the buffer never saw
        buf._journal.add(Delta.deletion(0, 3))
        delta = buf.pending_delta()
        assert delta.apply("abcdef") == "abcdef!"
        assert not buf._journal.valid

    def test_sync_points_flush_by_reason(self):
        save = value_of("client.coalesce.flush.save")
        conflict = value_of("client.coalesce.flush.conflict")
        buf = EditorBuffer("x")
        buf.insert(1, "y")
        buf.mark_synced()
        assert value_of("client.coalesce.flush.save") == save + 1
        buf.insert(0, "z")
        buf.resync("server says", reason="conflict")
        assert value_of("client.coalesce.flush.conflict") == conflict + 1
        assert not buf.dirty

    def test_long_burst_invalidates_then_diff(self):
        buf = EditorBuffer("")
        for i in range(600):  # past _JOURNAL_MAX_OPS
            buf.insert(i, "a")
        assert not buf._journal.valid
        assert buf.pending_delta().apply("") == "a" * 600
