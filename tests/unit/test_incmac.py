"""Incremental MACs: correctness, and the SV-A substitution attack."""

import os

import pytest

from repro.core.incmac import (
    MerkleIncrementalMac,
    ObservedUpdatePair,
    XorIncrementalMac,
    substitution_forgery,
)
from repro.errors import IntegrityError

KEY = bytes(range(16))


def blocks(n, seed=1):
    import random
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(8)) for _ in range(n)]


class TestXorMac:
    def test_tag_verify(self):
        mac = XorIncrementalMac(KEY)
        message = blocks(10)
        tag = mac.tag(message)
        mac.verify(message, tag)

    def test_detects_plain_modification(self):
        mac = XorIncrementalMac(KEY)
        message = blocks(10)
        tag = mac.tag(message)
        message[3] = bytes(8)
        with pytest.raises(IntegrityError):
            mac.verify(message, tag)

    def test_incremental_update_matches_recompute(self):
        mac = XorIncrementalMac(KEY)
        message = blocks(10)
        tag = mac.tag(message)
        new = os.urandom(8)
        tag2 = mac.update(tag, 4, message[4], new)
        message[4] = new
        assert tag2 == mac.tag(message)

    def test_update_is_order_insensitive(self):
        mac = XorIncrementalMac(KEY)
        message = blocks(6)
        tag = mac.tag(message)
        a, b = os.urandom(8), os.urandom(8)
        t1 = mac.update(mac.update(tag, 1, message[1], a),
                        2, message[2], b)
        t2 = mac.update(mac.update(tag, 2, message[2], b),
                        1, message[1], a)
        assert t1 == t2

    def test_wrong_block_width(self):
        with pytest.raises(IntegrityError):
            XorIncrementalMac(KEY).tag([b"short"])

    def test_empty_message(self):
        mac = XorIncrementalMac(KEY)
        mac.verify([], mac.tag([]))


class TestSubstitutionAttack:
    """The paper's claim, executed: the XOR scheme falls to a server
    that merely *watched* one update; the hash tree does not."""

    def _watch_one_update(self):
        mac = XorIncrementalMac(KEY)
        message = blocks(8)
        old_block = message[5]
        old_tag = mac.tag(message)
        new_block = os.urandom(8)
        new_tag = mac.update(old_tag, 5, old_block, new_block)
        message[5] = new_block
        observed = ObservedUpdatePair(5, old_block, new_block,
                                      old_tag, new_tag)
        return mac, message, new_tag, observed

    def test_forgery_verifies(self):
        mac, message, tag, observed = self._watch_one_update()
        forged_blocks, forged_tag = substitution_forgery(
            message, tag, observed
        )
        mac.verify(forged_blocks, forged_tag)  # ACCEPTED: the attack
        assert forged_blocks != message

    def test_forgery_works_even_after_more_edits_elsewhere(self):
        mac, message, tag, observed = self._watch_one_update()
        # The client keeps editing other positions...
        for index in (0, 2, 7):
            new = os.urandom(8)
            tag = mac.update(tag, index, message[index], new)
            message[index] = new
        # ...and the stale observation still forges successfully.
        forged_blocks, forged_tag = substitution_forgery(
            message, tag, observed
        )
        mac.verify(forged_blocks, forged_tag)

    def test_forgery_never_uses_the_key(self):
        """The attack function receives only wire-visible values."""
        _, message, tag, observed = self._watch_one_update()
        forged_blocks, forged_tag = substitution_forgery(
            message, tag, observed
        )
        # Reconstructs under an independent verifier instance.
        XorIncrementalMac(KEY).verify(forged_blocks, forged_tag)

    def test_same_attack_fails_against_hash_tree(self):
        """The *mixed-state* forgery (old block 5 + new other blocks —
        a message that never existed) succeeds against the XOR MAC but
        not against the tree: tree tag differences are not local XOR
        terms that commute across unrelated edits."""
        message = blocks(8)
        tree = MerkleIncrementalMac(KEY, message)
        old_block = message[5]
        old_tag = tree.tag()
        new_block = os.urandom(8)
        new_tag = tree.replace(5, new_block)
        message[5] = new_block
        term_delta = bytes(a ^ b for a, b in zip(old_tag, new_tag))
        # the client edits another position afterwards
        other = os.urandom(8)
        current_tag = tree.replace(0, other)
        message[0] = other
        # attacker applies the XOR trick with the stale observation
        forged_blocks = list(message)
        forged_blocks[5] = old_block
        forged_tag = bytes(
            a ^ b for a, b in zip(current_tag, term_delta)
        )
        with pytest.raises(IntegrityError):
            MerkleIncrementalMac.verify(KEY, forged_blocks, forged_tag)
        # ...and there is no tag it could compute: even the honest tag
        # for the forged message is unreachable without the key.
        with pytest.raises(IntegrityError):
            MerkleIncrementalMac.verify(KEY, forged_blocks, current_tag)


class TestMerkleMac:
    def test_tag_verify(self):
        message = blocks(9)
        tree = MerkleIncrementalMac(KEY, message)
        MerkleIncrementalMac.verify(KEY, message, tree.tag())

    def test_replace_matches_rebuild(self):
        message = blocks(9)
        tree = MerkleIncrementalMac(KEY, message)
        new = os.urandom(8)
        tag = tree.replace(4, new)
        message[4] = new
        assert tag == MerkleIncrementalMac(KEY, message).tag()

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 15, 16])
    def test_all_shapes(self, n):
        message = blocks(n, seed=n)
        tree = MerkleIncrementalMac(KEY, message)
        for index in range(n):
            new = bytes([index] * 8)
            tag = tree.replace(index, new)
            message[index] = new
        assert tag == MerkleIncrementalMac(KEY, message).tag()

    def test_detects_modification(self):
        message = blocks(8)
        tag = MerkleIncrementalMac(KEY, message).tag()
        message[0] = bytes(8)
        with pytest.raises(IntegrityError):
            MerkleIncrementalMac.verify(KEY, message, tag)

    def test_detects_truncation(self):
        message = blocks(8)
        tag = MerkleIncrementalMac(KEY, message).tag()
        with pytest.raises(IntegrityError):
            MerkleIncrementalMac.verify(KEY, message[:-1], tag)

    def test_position_binding(self):
        """Swapping two equal-content... rather, two blocks, changes the
        root (leaves are position-bound)."""
        message = blocks(8)
        tag = MerkleIncrementalMac(KEY, message).tag()
        swapped = list(message)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        with pytest.raises(IntegrityError):
            MerkleIncrementalMac.verify(KEY, swapped, tag)

    def test_replace_out_of_range(self):
        tree = MerkleIncrementalMac(KEY, blocks(4))
        with pytest.raises(IndexError):
            tree.replace(4, bytes(8))
