"""Unicode hardening: multi-byte characters across every layer.

Block packing counts characters but stores UTF-8 bytes, so non-ASCII
text stresses the capacity logic everywhere — packing, chunking,
incremental splits, deltas, stego, and the full stack.
"""

import pytest

from repro.core import Delta, create_document, load_document
from repro.crypto.random import DeterministicRandomSource

SAMPLES = [
    "naïve café résumé",                      # 2-byte chars
    "日本語のテキストです",                     # 3-byte chars
    "🎉🚀🌍🔐📜",                              # 4-byte chars (astral)
    "mixed: aé中🎉z aé中🎉z",                   # everything at once
    "źälgo text",                  # combining marks
]


@pytest.fixture(params=["recb", "rpc"])
def scheme(request):
    return request.param


class TestRoundTrips:
    @pytest.mark.parametrize("text", SAMPLES)
    @pytest.mark.parametrize("b", [1, 3, 8])
    def test_create_load(self, keys, nonce_rng, scheme, text, b):
        doc = create_document(text, key_material=keys, scheme=scheme,
                              block_chars=b, rng=nonce_rng)
        assert doc.text == text
        assert load_document(doc.wire(), key_material=keys).text == text

    @pytest.mark.parametrize("text", SAMPLES)
    def test_char_length_is_code_points(self, keys, nonce_rng, scheme,
                                        text):
        doc = create_document(text, key_material=keys, scheme=scheme,
                              rng=nonce_rng)
        assert doc.char_length == len(text)


class TestIncrementalEdits:
    def test_insert_emoji_mid_ascii(self, keys, nonce_rng, scheme):
        doc = create_document("hello world", key_material=keys,
                              scheme=scheme, rng=nonce_rng)
        server = doc.wire()
        server = doc.insert(5, " 🎉🎉 ").apply(server)
        assert server == doc.wire()
        assert doc.text == "hello 🎉🎉  world"
        assert load_document(server, key_material=keys).text == doc.text

    def test_delete_across_emoji_blocks(self, keys, nonce_rng, scheme):
        text = "abc🎉🎉🎉def"
        doc = create_document(text, key_material=keys, scheme=scheme,
                              block_chars=2, rng=nonce_rng)
        server = doc.wire()
        server = doc.delete(2, 5).apply(server)
        assert doc.text == "abef"
        assert server == doc.wire()

    def test_splitting_wide_char_block(self, keys, nonce_rng, scheme):
        """Inserting into a block already at its byte capacity forces a
        re-chunk that must respect both limits."""
        text = "中中"  # 6 bytes, 2 chars, fits one b=8 block
        doc = create_document(text, key_material=keys, scheme=scheme,
                              block_chars=8, rng=nonce_rng)
        server = doc.wire()
        server = doc.insert(1, "中中中").apply(server)  # now 15 bytes
        assert doc.text == "中中中中中"
        assert server == doc.wire()
        assert load_document(server, key_material=keys).text == doc.text

    def test_delta_with_unicode_payload(self, keys, nonce_rng, scheme):
        doc = create_document("ascii base", key_material=keys,
                              scheme=scheme, rng=nonce_rng)
        delta = Delta.parse(Delta.insertion(5, " déjà-vu 中").serialize())
        server = doc.wire()
        server = doc.apply_delta(delta).apply(server)
        assert "déjà-vu 中" in doc.text
        assert server == doc.wire()


class TestStegoUnicode:
    @pytest.mark.parametrize("text", SAMPLES)
    def test_stego_round_trip(self, keys, nonce_rng, text):
        from repro.encoding.stego import stego_unwrap, stego_wrap
        doc = create_document(text, key_material=keys, scheme="rpc",
                              rng=nonce_rng)
        assert stego_unwrap(stego_wrap(doc.wire())) == doc.wire()


class TestFullStackUnicode:
    def test_session_with_unicode(self):
        from repro.extension import PrivateEditingSession
        session = PrivateEditingSession(
            "doc", "contraseña-中文-🔐",
            rng=DeterministicRandomSource(1),
        )
        session.open()
        session.type_text(0, "меморандум: 機密 🤫")
        session.save()
        session.type_text(0, "✅ ")
        session.save()
        reader = PrivateEditingSession(
            "doc", "contraseña-中文-🔐", server=session.server,
            rng=DeterministicRandomSource(2),
        )
        assert reader.open() == "✅ меморандум: 機密 🤫"
