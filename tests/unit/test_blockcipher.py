"""AesCipher facade: scalar/batch path selection must be invisible."""

import os

from repro.crypto.blockcipher import BLOCK_SIZE, AesCipher, BlockCipher


class TestAesCipher:
    def test_satisfies_protocol(self):
        assert isinstance(AesCipher(bytes(16)), BlockCipher)

    def test_block_round_trip(self):
        cipher = AesCipher(os.urandom(16))
        block = os.urandom(BLOCK_SIZE)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_many_below_threshold_matches_blockwise(self):
        cipher = AesCipher(bytes(16))
        data = os.urandom(16 * 3)  # below the batch threshold
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.encrypt_many(data) == want

    def test_many_above_threshold_matches_blockwise(self):
        cipher = AesCipher(bytes(16))
        data = os.urandom(16 * 64)  # above the batch threshold
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.encrypt_many(data) == want

    def test_many_round_trip_both_paths(self):
        cipher = AesCipher(os.urandom(16))
        for nblocks in (2, 64):
            data = os.urandom(16 * nblocks)
            assert cipher.decrypt_many(cipher.encrypt_many(data)) == data

    def test_empty_many(self):
        cipher = AesCipher(bytes(16))
        assert cipher.encrypt_many(b"") == b""
        assert cipher.decrypt_many(b"") == b""
