"""AesCipher facade: scalar/batch path selection must be invisible."""

import os

import pytest

from repro.crypto.blockcipher import BLOCK_SIZE, AesCipher, BlockCipher
from repro.obs import value_of

_THRESHOLD = AesCipher._BATCH_THRESHOLD_BLOCKS

#: both sides of the historical threshold (16) and the current one —
#: the crossover must be invisible in bytes AND in counter accounting
_CROSSOVER_SIZES = (15, 16, 17, _THRESHOLD - 1, _THRESHOLD, _THRESHOLD + 1)


class TestAesCipher:
    def test_satisfies_protocol(self):
        assert isinstance(AesCipher(bytes(16)), BlockCipher)

    def test_block_round_trip(self):
        cipher = AesCipher(os.urandom(16))
        block = os.urandom(BLOCK_SIZE)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_many_below_threshold_matches_blockwise(self):
        cipher = AesCipher(bytes(16))
        data = os.urandom(16 * 3)  # below the batch threshold
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.encrypt_many(data) == want

    def test_many_above_threshold_matches_blockwise(self):
        cipher = AesCipher(bytes(16))
        data = os.urandom(16 * 64)  # above the batch threshold
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.encrypt_many(data) == want

    def test_many_round_trip_both_paths(self):
        cipher = AesCipher(os.urandom(16))
        for nblocks in (2, 64):
            data = os.urandom(16 * nblocks)
            assert cipher.decrypt_many(cipher.encrypt_many(data)) == data

    def test_empty_many(self):
        cipher = AesCipher(bytes(16))
        assert cipher.encrypt_many(b"") == b""
        assert cipher.decrypt_many(b"") == b""


class TestThresholdCrossover:
    """The scalar/batch switch point must be invisible: identical bytes
    and path-independent counter accounting on both sides of it."""

    @pytest.mark.parametrize("nblocks", _CROSSOVER_SIZES)
    def test_encrypt_bytes_identical_across_crossover(self, nblocks):
        cipher = AesCipher(bytes(range(16)))
        data = os.urandom(16 * nblocks)
        want = b"".join(
            cipher.encrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.encrypt_many(data) == want

    @pytest.mark.parametrize("nblocks", _CROSSOVER_SIZES)
    def test_decrypt_bytes_identical_across_crossover(self, nblocks):
        cipher = AesCipher(bytes(range(16)))
        data = os.urandom(16 * nblocks)
        want = b"".join(
            cipher.decrypt_block(data[i : i + 16])
            for i in range(0, len(data), 16)
        )
        assert cipher.decrypt_many(data) == want

    @pytest.mark.parametrize("nblocks", _CROSSOVER_SIZES)
    def test_counter_accounting_path_independent(self, nblocks):
        """crypto.aes.calls advances by exactly ``nblocks`` per
        encrypt_many whether the scalar loop or the NumPy batch ran,
        and the direction split always sums to the total."""
        cipher = AesCipher(bytes(range(16)))
        data = os.urandom(16 * nblocks)

        def snap():
            return {name: value_of(f"crypto.aes.{name}")
                    for name in ("calls", "encrypt_calls", "decrypt_calls",
                                 "batch_calls")}

        before = snap()
        cipher.encrypt_many(data)
        after_enc = snap()
        cipher.decrypt_many(cipher.encrypt_many(data))
        after_dec = snap()

        assert after_enc["calls"] - before["calls"] == nblocks
        assert after_enc["encrypt_calls"] - before["encrypt_calls"] == nblocks
        assert after_enc["decrypt_calls"] == before["decrypt_calls"]
        assert after_dec["decrypt_calls"] - after_enc["decrypt_calls"] == nblocks
        # parity: every call is exactly one encrypt or one decrypt
        for state in (before, after_enc, after_dec):
            assert state["calls"] == (state["encrypt_calls"]
                                      + state["decrypt_calls"])
        # the batch counter moves only above the threshold
        batch_delta = after_enc["batch_calls"] - before["batch_calls"]
        assert batch_delta == (1 if nblocks >= _THRESHOLD else 0)
