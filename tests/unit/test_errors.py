"""The exception hierarchy: everything under ReproError, sensible
subtrees."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.CryptoError, errors.KeySizeError, errors.BlockSizeError,
        errors.CiphertextFormatError, errors.IntegrityError,
        errors.DecryptionError, errors.DeltaError, errors.DeltaSyntaxError,
        errors.DeltaApplicationError, errors.TransformError,
        errors.ProtocolError, errors.BlockedRequestError,
        errors.QuotaExceededError, errors.SessionError,
        errors.ConflictError, errors.PasswordError,
        errors.DataStructureError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_crypto_subtree(self):
        for exc in (errors.IntegrityError, errors.DecryptionError,
                    errors.KeySizeError):
            assert issubclass(exc, errors.CryptoError)

    def test_delta_subtree(self):
        for exc in (errors.DeltaSyntaxError, errors.DeltaApplicationError,
                    errors.TransformError):
            assert issubclass(exc, errors.DeltaError)

    def test_protocol_subtree(self):
        for exc in (errors.BlockedRequestError, errors.QuotaExceededError,
                    errors.SessionError, errors.ConflictError):
            assert issubclass(exc, errors.ProtocolError)

    def test_one_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.IntegrityError("tampered")
