"""Security harness units: adversary views, attack constructions,
covert channels, leakage analysis."""

import pytest

from repro.core import Delta, KeyMaterial, create_document, load_document
from repro.core.rpc import RpcCodec
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import parse_document
from repro.errors import IntegrityError
from repro.security import analysis, attacks, covert
from repro.security.adversary import (
    ActiveServerAdversary,
    HonestButCuriousServer,
)
from repro.services.gdocs.storage import DocumentStore

KEY = bytes(range(16))


@pytest.fixture
def rpc_wire(keys, nonce_rng):
    doc = create_document(
        "a perfectly ordinary confidential document body",
        key_material=keys, scheme="rpc", block_chars=8, rng=nonce_rng,
    )
    return doc.wire()


class TestAttackConstructions:
    def test_replicate_grows_by_one_record(self, rpc_wire):
        assert len(attacks.replicate_record(rpc_wire, 1)) == len(rpc_wire) + 28

    def test_remove_shrinks(self, rpc_wire):
        assert len(attacks.remove_record(rpc_wire, 1)) == len(rpc_wire) - 28

    def test_swap_preserves_length(self, rpc_wire):
        assert len(attacks.swap_records(rpc_wire, 1, 2)) == len(rpc_wire)

    def test_flip_changes_exactly_one_char(self, rpc_wire):
        flipped = attacks.flip_record_byte(rpc_wire, 1)
        diffs = sum(a != b for a, b in zip(flipped, rpc_wire))
        assert diffs == 1

    def test_all_detected_by_rpc(self, rpc_wire, keys):
        for tampered in [
            attacks.replicate_record(rpc_wire, 2),
            attacks.remove_record(rpc_wire, 2),
            attacks.swap_records(rpc_wire, 1, 3),
        ]:
            with pytest.raises(Exception):
                load_document(tampered, key_material=keys)

    def test_splice_detected(self, keys, nonce_rng):
        a = create_document("document aaaaaaaa version", key_material=keys,
                            scheme="rpc", rng=nonce_rng).wire()
        b = create_document("document bbbbbbbb version", key_material=keys,
                            scheme="rpc", rng=nonce_rng).wire()
        with pytest.raises(Exception):
            load_document(attacks.splice_documents(a, b, 2),
                          key_material=keys)


class TestLengthAmendmentForgery:
    def test_unamended_scheme_is_forgeable(self):
        wire, _ = attacks.build_colliding_document(
            KEY, DeterministicRandomSource(1), amended=False
        )
        honest = attacks.verify_without_length_amendment(wire, KEY)
        assert honest == "abcdefghDUPDUPDUDUPDUPDUabcdefgh"
        forged = attacks.excise_cancelling_segment(wire)
        assert attacks.verify_without_length_amendment(forged, KEY) == (
            "abcdefghabcdefgh"
        )

    def test_amended_scheme_detects_the_same_forgery(self):
        wire, _ = attacks.build_colliding_document(
            KEY, DeterministicRandomSource(1), amended=True
        )
        codec = RpcCodec(KEY, DeterministicRandomSource(2))
        _, records = parse_document(wire)
        codec.load(records)  # honest verifies
        _, forged = parse_document(attacks.excise_cancelling_segment(wire))
        with pytest.raises(IntegrityError, match="length"):
            codec.load(forged)


class TestAdversaryViews:
    def test_honest_but_curious_sees_history(self):
        store = DocumentStore()
        store.create("d", "v0")
        store.set_content("d", "v1")
        adversary = HonestButCuriousServer(store)
        assert adversary.version_history("d") == ["v0"]
        assert adversary.current_ciphertext("d") == "v1"

    def test_length_estimate(self, rpc_wire):
        store = DocumentStore()
        store.create("d", rpc_wire)
        adversary = HonestButCuriousServer(store)
        estimate = adversary.length_estimate("d", block_chars=8)
        assert abs(estimate - 47) <= 8  # true length 47, one-block slack

    def test_rollback_replays_old_version(self, keys, nonce_rng):
        doc = create_document("version one", key_material=keys,
                              scheme="rpc", rng=nonce_rng)
        store = DocumentStore()
        store.create("d", doc.wire())
        cdelta = doc.insert(0, "v2: ")
        store.apply_delta("d", cdelta.serialize())
        adversary = ActiveServerAdversary(store)
        old = adversary.rollback("d")
        # the rolled-back version STILL VERIFIES — rollback is the attack
        # no per-document scheme detects (freshness needs external state)
        assert load_document(old, key_material=keys).text == "version one"


class TestCovertChannels:
    def test_delta_shape_encode_decode_without_mitigation(self):
        channel = covert.DeltaShapeChannel(block_chars=8)
        document = "x" * 200
        real_edit = Delta.insertion(len(document), "!")
        shaped = channel.encode(5, document, real_edit)
        # semantics preserved
        assert shaped.apply(document) == document + "!"

    def test_shape_destroyed_by_recompute(self):
        """Deriving the delta from the two versions (the paper's trusted
        recompute countermeasure) erases the churn."""
        from repro.workloads.diff import derive_delta
        channel = covert.DeltaShapeChannel(block_chars=8)
        document = "x" * 200
        shaped = channel.encode(7, document, Delta.insertion(200, "!"))
        recomputed = derive_delta(document, shaped.apply(document))
        assert recomputed.chars_deleted == 0  # churn gone

    def test_encode_validates_symbol(self):
        channel = covert.DeltaShapeChannel()
        with pytest.raises(ValueError):
            channel.encode(99, "x" * 200, Delta(()))
        with pytest.raises(ValueError):
            channel.encode(5, "xx", Delta(()))  # too short

    def test_length_channel_encoding_invisible(self):
        channel = covert.LengthChannel()
        doc = "visible text"
        for bit in (0, 1):
            assert channel.encode(bit, doc).rstrip(" ") == doc

    def test_timing_channel(self):
        channel = covert.TimingChannel()
        assert channel.decode(0.5 + channel.encode_delay(1), 0.5) == 1
        assert channel.decode(0.5 + channel.encode_delay(0), 0.5) == 0

    def test_measure_channel_perfect(self):
        report = covert.measure_channel(lambda s: s, [0, 1, 2, 3], 2.0)
        assert report.accuracy == 1.0
        assert report.effective_bits_per_update == 2.0

    def test_measure_channel_random_guessing(self):
        report = covert.measure_channel(lambda s: 0, [0, 1] * 10, 1.0)
        assert report.accuracy == 0.5
        assert report.effective_bits_per_update == 0.0


class TestAnalysis:
    def test_byte_uniformity_of_ciphertext(self, keys, nonce_rng):
        doc = create_document("z" * 3000, key_material=keys, scheme="recb",
                              rng=nonce_rng)
        stat = analysis.byte_uniformity(doc.wire())
        assert stat < 2.0  # ~1.0 for random bytes

    def test_entropy_high(self, keys, nonce_rng):
        doc = create_document("z" * 3000, key_material=keys, scheme="recb",
                              rng=nonce_rng)
        assert analysis.shannon_entropy_per_byte(doc.wire()) > 7.5

    def test_equal_plaintext_distinct_ciphertext(self, keys, nonce_rng):
        assert analysis.equal_plaintext_distinct_ciphertext(
            "samesame", 50, keys, rng=nonce_rng
        )

    def test_positional_error_grows_with_block_size(self, keys, nonce_rng):
        """The paper's claim: multi-char blocks blur edit positions."""
        errors = {}
        for b in (1, 8):
            doc = create_document("m" * 2000, key_material=keys,
                                  scheme="recb", block_chars=b,
                                  rng=nonce_rng)
            errors[b] = analysis.positional_error(doc, trials=40, seed=1)
        assert errors[8] > errors[1]

    def test_timing_granularity(self):
        edits = [0.5, 3.2, 7.9]
        saves = [10.0]
        # all edits only visible at t=10
        assert analysis.timing_granularity(edits, saves) == pytest.approx(
            ((10 - 0.5) + (10 - 3.2) + (10 - 7.9)) / 3
        )
