"""Corpus replay: every shrunk failure the fuzzer ever found, forever.

Each ``*.json`` file beside this test is a minimal trace the
differential fuzzer (``repro.fuzz``) shrank from a real invariant
violation, committed together with the fix it motivated.  Replaying
them as ordinary pytest cases turns every past bug into a permanent
regression test — if one of these ever reports a violation again, the
bug it documents is back.

Triage workflow for a new failure (see ``docs/testing.md``): the
fuzzer writes the shrunk file, ``repro fuzz --replay FILE`` reproduces
it interactively, and once fixed the file moves here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz.generators import TRACE_FORMAT, Trace
from repro.fuzz.runner import run_trace

CORPUS_DIR = Path(__file__).parent
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def test_corpus_is_not_empty():
    """The sweep that built this harness found real bugs; their replay
    files must stay committed (an empty corpus means they were lost)."""
    assert len(CORPUS_FILES) >= 5


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_file_replays_clean(path):
    data = _load(path)
    trace = Trace.from_dict(data["trace"])
    violation = run_trace(trace)
    assert violation is None, (
        f"{path.name} regressed: [{violation.kind}] {violation.detail} "
        f"(originally: {data['violation']['kind']}, "
        f"fixed in {data.get('fixed_in', '?')})"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_file_is_well_formed(path):
    """Replay files must stay loadable and canonically serializable:
    format marker present, trace round-trips through JSON byte-stably,
    and the recorded violation names a kind."""
    data = _load(path)
    assert data["trace"]["format"] == TRACE_FORMAT
    trace = Trace.from_dict(data["trace"])
    assert Trace.from_json(trace.to_json()) == trace
    assert trace.to_json() == Trace.from_json(trace.to_json()).to_json()
    assert data["violation"]["kind"]
