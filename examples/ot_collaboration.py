#!/usr/bin/env python3
"""Encrypted collaboration on a merging server (beyond the paper).

The real 2011 Google Documents server *merged* concurrent edits via
operational transformation.  Restoring that behaviour
(`GDocsServer(merge_concurrent=True)` + `repro.core.ot`) reveals a
striking property: because rECB data records are independent and
cdeltas are record-aligned, **the server can merge ciphertext deltas it
cannot read** — two users edit the same encrypted document at once and
both converge, while the provider still learns nothing.

The same experiment with RPC shows why integrity and blind merging
conflict: each client's checksum patch is computed without knowledge of
the other's edits, so the merged document fails verification — which
the reader's extension catches (fail closed, never silent corruption).

Run:  python examples/ot_collaboration.py
"""

from repro.client.gdocs_client import GDocsClient
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.services.gdocs.server import GDocsServer

BASE = "alpha bravo charlie delta echo foxtrot golf hotel india. "


def user(server, seed, scheme="recb"):
    channel = Channel(server)
    extension = GDocsExtension(
        PasswordVault({"doc": "pw"}), scheme=scheme,
        rng=DeterministicRandomSource(seed), decrypt_acks=True,
    )
    channel.set_mediator(extension)
    return GDocsClient(channel, "doc"), extension


def recb_demo() -> None:
    print("=== encrypted concurrent editing, rECB ===")
    server = GDocsServer(merge_concurrent=True)
    alice, _ = user(server, 1)
    bob, _ = user(server, 2)

    alice.open()
    alice.type_text(0, BASE)
    alice.save()
    bob.open()
    bob.save()

    print(" concurrent edits: bob appends at the tail,"
          " alice inserts at the head")
    bob.type_text(len(BASE), "BOB-TAIL.")
    bob.save()
    alice.type_text(0, "ALICE-HEAD. ")
    outcome = alice.save()

    print(f" alice's stale delta was merged server-side "
          f"(conflict={outcome.conflict}, merges={server.merges_performed})")
    stored = server.store.get("doc").content
    print(f" provider stores ciphertext only: "
          f"{looks_encrypted(stored)}; 'ALICE' in it: {'ALICE' in stored}")
    print(f" alice converged to: {alice.editor.text[:34]}...")
    reader, _ = user(server, 3)
    text = reader.open()
    print(f" fresh reader decrypts the merge: head={text[:12]!r} "
          f"tail={text[-9:]!r}\n")


def rpc_demo() -> None:
    print("=== the same experiment under RPC (integrity on) ===")
    server = GDocsServer(merge_concurrent=True)
    alice, _ = user(server, 4, scheme="rpc")
    bob, _ = user(server, 5, scheme="rpc")
    alice.open()
    alice.type_text(0, BASE)
    alice.save()
    bob.open()
    bob.save()
    bob.type_text(len(BASE), "BOB.")
    bob.save()
    alice.type_text(0, "ALICE. ")
    alice.save()
    print(f" server merged blindly ({server.merges_performed} merge)")
    reader, extension = user(server, 6, scheme="rpc")
    seen = reader.open()
    print(f" reader's verification refuses the result "
          f"(sees ciphertext: {looks_encrypted(seen)})")
    if extension.warnings:
        print(f" diagnosis: {extension.warnings[-1].split(':', 1)[1].strip()}")
    print("\n -> integrity and blind merging are structurally at odds;"
          "\n    SPORC-style trusted-client merging is the escape the"
          "\n    paper points to.")


def main() -> None:
    recb_demo()
    rpc_demo()
    print("\nOT-collaboration demo OK")


if __name__ == "__main__":
    main()
