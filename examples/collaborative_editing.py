#!/usr/bin/env python3
"""Collaborative editing on an encrypted document (SVII-A).

Demonstrates the paper's findings end to end:

1. sharing works: share the Google document, share the password out of
   band — the second user opens the plaintext;
2. passive readers get automatic content refreshing;
3. *simultaneous* editing degrades: the extension blanks
   contentFromServer(Hash), so a conflicting client can only complain
   ("multiple people editing the same region") and recover with a full
   save that clobbers the other editor;
4. the beyond-the-paper fix: decrypting Ack content instead of blanking
   it restores silent resync.

Run:  python examples/collaborative_editing.py
"""

from repro.client.gdocs_client import GDocsClient
from repro.crypto.random import DeterministicRandomSource
from repro.extension import GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.services.gdocs.server import GDocsServer

DOC = "shared-plan"
PASSWORD = "our shared secret"


def user(server, seed, decrypt_acks=False):
    channel = Channel(server)
    channel.set_mediator(GDocsExtension(
        PasswordVault({DOC: PASSWORD}),
        rng=DeterministicRandomSource(seed),
        decrypt_acks=decrypt_acks,
    ))
    return GDocsClient(channel, DOC)


def main() -> None:
    server = GDocsServer()

    print("1) Alice creates and shares the encrypted document")
    alice = user(server, 1)
    alice.open()
    alice.type_text(0, "Agenda: budget, hiring. ")
    alice.save()

    bob = user(server, 2)
    print(f"   Bob opens it with the shared password: {bob.open()!r}")

    print("\n2) Passive reading refreshes automatically")
    alice.type_text(0, "[v2] ")
    alice.save()
    print(f"   Bob refreshes and sees: {bob.refresh()!r}")

    print("\n3) Simultaneous editing (the paper's degraded mode)")
    bob.type_text(0, "bob: ")
    bob.save()
    alice.type_text(0, "alice: ")
    outcome = alice.save()
    print(f"   Alice's delta is rejected (conflict={outcome.conflict});"
          f" her client complains: {alice.complaints!r}")
    alice.save()  # recovery: full save, clobbering Bob's edit
    reader = user(server, 3)
    text = reader.open()
    print(f"   Final text: {text!r}")
    print(f"   Bob's edit survived? {'bob:' in text}  (lost update!)")

    print("\n4) With decrypt_acks=True the resync works like plaintext")
    server2 = GDocsServer()
    carol = user(server2, 4, decrypt_acks=True)
    dave = user(server2, 5, decrypt_acks=True)
    carol.open()
    carol.type_text(0, "base. ")
    carol.save()
    dave.open()
    dave.type_text(0, "dave. ")
    dave.save()
    carol.type_text(0, "carol. ")
    outcome = carol.save()
    print(f"   Carol conflicts (conflict={outcome.conflict}) but resyncs "
          f"silently: complaints={carol.complaints!r}")
    carol.type_text(0, "carol. ")
    carol.save()
    final = user(server2, 6, decrypt_acks=True).open()
    print(f"   Final text keeps both edits: {final!r}")
    assert "dave." in final and "carol." in final

    print("\ncollaboration demo OK")


if __name__ == "__main__":
    main()
