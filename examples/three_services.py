#!/usr/bin/env python3
"""Generality: the same approach on all three target applications (SIII).

The paper built extensions for Google Documents (incremental deltas),
Mozilla Bespin (whole-file HTTP PUT), and Adobe Buzzword (whole-document
XML POST with <textRun> elements).  This example drives all three
simulated services through their respective extensions and shows each
server holding only ciphertext while the oblivious clients work
normally.

Run:  python examples/three_services.py
"""

from repro.client import BespinClient, BuzzwordClient
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import (
    BespinExtension,
    BuzzwordExtension,
    PasswordVault,
    PrivateEditingSession,
)
from repro.net.channel import Channel
from repro.services import BespinServer, BuzzwordServer, buzzword

SECRET_CODE = "API_KEY = 'sk-live-4242424242'"
SECRET_PROSE = "The merger closes Friday. Tell no one."


def gdocs_demo() -> None:
    print("=== Google Documents (incremental deltas) ===")
    session = PrivateEditingSession(
        "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(1),
    )
    session.open()
    session.type_text(0, SECRET_PROSE)
    session.save()
    session.type_text(0, "[draft] ")
    outcome = session.save()
    stored = session.server_view()
    print(f" save kinds: full then {outcome.kind}")
    print(f" server stores: {stored[:48]}... ({len(stored)} chars)")
    assert looks_encrypted(stored) and "merger" not in stored
    print(f" user reads:   {session.text!r}\n")


def bespin_demo() -> None:
    print("=== Mozilla Bespin (whole-file PUT) ===")
    server = BespinServer()
    channel = Channel(server)
    channel.set_mediator(BespinExtension(
        PasswordVault({"proj/config.py": "pw"}),
        rng=DeterministicRandomSource(2),
    ))
    client = BespinClient(channel, "proj/config.py")
    client.open()
    client.editor.insert(0, SECRET_CODE)
    client.save()
    stored = server.files["proj/config.py"]
    print(f" server stores: {stored[:48]}...")
    assert looks_encrypted(stored) and "sk-live" not in stored
    reader = BespinClient(channel, "proj/config.py")
    print(f" client reads:  {reader.open()!r}\n")


def buzzword_demo() -> None:
    print("=== Adobe Buzzword (XML <textRun> POST) ===")
    server = BuzzwordServer()
    channel = Channel(server)
    channel.set_mediator(BuzzwordExtension(
        PasswordVault({"memo": "pw"}),
        rng=DeterministicRandomSource(3),
    ))
    client = BuzzwordClient(channel, "memo")
    client.paragraphs = ["Minutes, 3 June.", SECRET_PROSE]
    client.save()
    stored = server.documents["memo"]
    runs = buzzword.text_runs(stored)
    print(f" server stores XML with {stored.count('<textRun>')} text runs;"
          f" structure visible, content not:")
    print(f"   first run: {runs[0][:40]}...")
    assert all(looks_encrypted(run) for run in runs)
    assert "merger" not in stored
    reader = BuzzwordClient(channel, "memo")
    print(f" client reads:  {reader.open()!r}\n")


def main() -> None:
    gdocs_demo()
    bespin_demo()
    buzzword_demo()
    print("three-services demo OK")


if __name__ == "__main__":
    main()
