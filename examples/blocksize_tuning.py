#!/usr/bin/env python3
"""Choosing the block-capacity parameter b (SV-C, Figs. 6-7).

"The multiple-character block extension enables performance tradeoffs
between ciphertext size and encryption time."  This example sweeps
b = 1..8 on a 10000-character document and prints the trade-off table a
user would tune against: ciphertext blow-up (which decides how large a
document fits under the provider's 500 kB cap) versus whole-document
and incremental encryption cost.

Run:  python examples/blocksize_tuning.py
"""

import time

from repro.bench import render_table
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.services.gdocs.storage import MAX_DOCUMENT_CHARS
from repro.workloads.documents import document_of_length

DOC_CHARS = 10_000
KEYS = KeyMaterial.from_password("pw", salt=b"example-bs")


def main() -> None:
    text = document_of_length(DOC_CHARS, seed=1)
    rows = []
    for b in range(1, 9):
        rng = DeterministicRandomSource(b)
        t0 = time.perf_counter()
        doc = create_document(text, key_material=KEYS, scheme="recb",
                              block_chars=b, rng=rng)
        encrypt_ms = (time.perf_counter() - t0) * 1000

        t0 = time.perf_counter()
        for i in range(20):
            doc.insert((i * 997) % doc.char_length, "x")
        edit_us = (time.perf_counter() - t0) / 20 * 1e6

        blowup = doc.blowup()
        max_doc = int(MAX_DOCUMENT_CHARS / blowup)
        rows.append([
            str(b),
            f"{blowup:.2f}x",
            f"{max_doc:,} chars",
            f"{encrypt_ms:.1f} ms",
            f"{edit_us:.0f} us",
        ])
    print(render_table(
        ["b", "blow-up", "max doc under 500 kB cap",
         "encrypt 10k chars", "per 1-char edit"],
        rows,
        title="Block-size trade-off (rECB, 10000-char document)",
    ))
    print("\nRule of thumb (matching the paper): b = 7 or 8 — the blow-up"
          "\nreduction flattens there while incremental cost stays low.")


if __name__ == "__main__":
    main()
