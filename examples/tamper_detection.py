#!/usr/bin/env python3
"""The malicious server, and what each scheme does about it (SVI-A).

Walks through the paper's active-attack story:

* rECB (confidentiality-only) decrypts replicated records without
  complaint — the user silently reads altered content;
* RPC (confidentiality + integrity) rejects replication, reordering,
  truncation, and splicing, each with a diagnosis;
* the Wang-Kao-Yeh length amendment [35] catches a forgery the original
  RPC checksum would accept (built here with rigged nonce collisions);
* rollback to an old version verifies fine — the freshness limitation
  every per-document scheme shares.

Run:  python examples/tamper_detection.py
"""

from repro.core import KeyMaterial, create_document, load_document
from repro.core.rpc import RpcCodec
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import parse_document
from repro.errors import DecryptionError, IntegrityError
from repro.security.attacks import (
    build_colliding_document,
    excise_cancelling_segment,
    remove_record,
    replicate_record,
    swap_records,
    verify_without_length_amendment,
)

SECRET = "pay bonus to employee 4471; pay bonus to employee 9902"
KEYS = KeyMaterial.from_password("pw", salt=b"example-sa")


def main() -> None:
    rng = DeterministicRandomSource(1)

    print("=== rECB: malleable by design ===")
    doc = create_document(SECRET, key_material=KEYS, scheme="recb",
                          block_chars=8, rng=rng)
    forged = replicate_record(doc.wire(), 3)
    victim = load_document(forged, key_material=KEYS)
    print(f" original: {SECRET!r}")
    print(f" after server replicates one record: {victim.text!r}")
    print(" -> decryption SUCCEEDED; the alteration is silent\n")

    print("=== RPC: every structural attack detected ===")
    doc = create_document(SECRET, key_material=KEYS, scheme="rpc",
                          block_chars=8, rng=rng)
    wire = doc.wire()
    for name, attack in [
        ("replication", lambda w: replicate_record(w, 3)),
        ("reordering", lambda w: swap_records(w, 2, 4)),
        ("truncation", lambda w: remove_record(w, 3)),
    ]:
        try:
            load_document(attack(wire), key_material=KEYS)
            print(f" {name}: NOT DETECTED (bug!)")
        except (IntegrityError, DecryptionError) as exc:
            print(f" {name}: detected -> {exc}")
    print()

    print("=== why the length amendment matters [35] ===")
    key = KEYS.key
    unamended, _ = build_colliding_document(
        key, DeterministicRandomSource(2), amended=False
    )
    honest = verify_without_length_amendment(unamended, key)
    print(f" honest document decrypts to: {honest!r}")
    forged = excise_cancelling_segment(unamended)
    accepted = verify_without_length_amendment(forged, key)
    print(f" forged (segment excised) ACCEPTED by unamended verifier:"
          f" {accepted!r}")

    amended, _ = build_colliding_document(
        key, DeterministicRandomSource(2), amended=True
    )
    codec = RpcCodec(key, DeterministicRandomSource(3))
    try:
        _, records = parse_document(excise_cancelling_segment(amended))
        codec.load(records)
        print(" amended verifier: NOT DETECTED (bug!)")
    except IntegrityError as exc:
        print(f" same forgery vs amended verifier: detected -> {exc}")
    print()

    print("=== the limitation: rollback ===")
    doc = create_document("version one", key_material=KEYS, scheme="rpc",
                          rng=rng)
    old_wire = doc.wire()
    doc.insert(0, "version two: ")
    stale = load_document(old_wire, key_material=KEYS)
    print(f" server replays yesterday's ciphertext: verifies and reads"
          f" {stale.text!r}")
    print(" -> freshness needs state outside the document (out of scope,"
          " as in the paper)")

    print("\ntamper-detection demo OK")


if __name__ == "__main__":
    main()
