#!/usr/bin/env python3
"""Quickstart: private editing in five minutes.

Creates an encrypted document on a simulated Google-Documents-style
server, edits it through the mediating extension, and shows that the
server only ever stores ciphertext while the user sees plaintext.

Run:  python examples/quickstart.py
"""

from repro import PrivateEditingSession
from repro.encoding.wire import looks_encrypted


def main() -> None:
    # One call wires the whole stack: simulated server, interceptable
    # channel, the extension (with a per-document password), and an
    # oblivious Google-Docs-like client.
    session = PrivateEditingSession(
        doc_id="meeting-notes",
        password="correct horse battery staple",
        scheme="rpc",       # confidentiality AND integrity
        block_chars=8,      # 8 characters per AES block (SV-C)
    )

    session.open()
    session.type_text(0, "Q3 plan: acquire Initech for $4.2M in May.")
    session.save()

    # Edit incrementally — only a delta crosses the wire.
    session.type_text(8, " (CONFIDENTIAL)")
    session.save()

    print("What the user sees:")
    print(f"  {session.text!r}")
    print()
    stored = session.server_view()
    print("What the untrusted server stores "
          f"({len(stored)} chars, blow-up {len(stored) / len(session.text):.1f}x):")
    print(f"  {stored[:76]}...")
    assert looks_encrypted(stored)
    assert "Initech" not in stored and "4.2M" not in stored
    print()

    # Anyone with the password (and nobody without) can open it.
    reader = PrivateEditingSession(
        "meeting-notes", "correct horse battery staple",
        server=session.server,
    )
    print("A second client with the shared password reads:")
    print(f"  {reader.open()!r}")

    snoop = PrivateEditingSession(
        "meeting-notes", "wrong password", server=session.server,
    )
    seen = snoop.open()
    print("A client with the wrong password sees only ciphertext:")
    print(f"  {seen[:60]}...")
    assert looks_encrypted(seen)

    print("\nquickstart OK")


if __name__ == "__main__":
    main()
