#!/usr/bin/env python3
"""Beyond the paper: the four extensions this reproduction adds.

Each one picks up a thread the 2011 paper explicitly left hanging:

1. **Steganographic mode** (SVI-A future work): defeat a provider that
   refuses to store anything that looks encrypted.
2. **Freshness / rollback detection** (the SVI-A availability
   discussion): catch a provider replaying yesterday's document.
3. **Multi-provider replication** (the introduction's out-of-scope
   availability answer): survive provider outages, heal stragglers,
   outvote a tampering minority.
4. **Key rotation**: revoke a leaked password with one (full) update.

Run:  python examples/beyond_the_paper.py
"""

from repro.core import load_document
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import looks_encrypted
from repro.extension import FreshnessMonitor, PrivateEditingSession
from repro.security.adversary import ActiveServerAdversary
from repro.security.analysis import encryption_score
from repro.services.gdocs.server import GDocsServer
from repro.services.replicated import FlakyServer, ReplicatedService


def stego_demo() -> None:
    print("=== 1. stego vs the censoring provider ===")
    censor = GDocsServer(reject_encrypted=True)
    session = PrivateEditingSession(
        "doc", "pw", server=censor, scheme="rpc",
        rng=DeterministicRandomSource(1), stego=True,
    )
    session.open()
    session.type_text(0, "samizdat chapter one")
    session.save()
    session.type_text(0, "[draft] ")
    session.save()  # incremental update, still disguised
    stored = session.server_view()
    print(f" provider stores: {stored[:48]}...")
    print(f" detector score: {encryption_score(stored):.2f} "
          f"(rejects above 0.50)")
    reader = PrivateEditingSession(
        "doc", "pw", server=censor, rng=DeterministicRandomSource(2),
        stego=True,
    )
    print(f" shared-password reader sees: {reader.open()!r}\n")


def freshness_demo() -> None:
    print("=== 2. rollback detection ===")
    monitor = FreshnessMonitor()
    session = PrivateEditingSession(
        "doc", "pw", scheme="rpc", rng=DeterministicRandomSource(3),
        freshness=monitor,
    )
    session.open()
    session.type_text(0, "version one")
    session.save()
    session.type_text(0, "version two: ")
    session.save()
    session.close()
    ActiveServerAdversary(session.server.store).rollback("doc")
    reader = PrivateEditingSession(
        "doc", "pw", server=session.server,
        rng=DeterministicRandomSource(4), freshness=monitor,
    )
    seen = reader.open()
    print(f" after server rollback, the client refuses the stale copy:"
          f" ciphertext shown = {looks_encrypted(seen)}")
    print(f" warning: {reader.extension.warnings[-1]}\n")


def replication_demo() -> None:
    print("=== 3. replication across three providers ===")
    backends = [FlakyServer(GDocsServer()) for _ in range(3)]
    service = ReplicatedService(backends)

    class Shim:
        store = None
        def __call__(self, request):
            return service(request)

    session = PrivateEditingSession(
        "doc", "pw", server=Shim(), scheme="rpc",
        rng=DeterministicRandomSource(5),
    )
    session.open()
    session.type_text(0, "replicated truth. ")
    session.save()
    backends[2].outage(1)
    session.type_text(0, "written during provider-3 outage. ")
    session.save()
    print(f" health during outage: {service.backend_health('doc')}")
    session.type_text(0, "after. ")
    session.save()  # heals the straggler with ciphertext copy
    print(f" health after heal:   {service.backend_health('doc')}")
    replicas = {b._backend.store.get("doc").content for b in backends}
    print(f" replicas byte-identical: {len(replicas) == 1}")
    backends[0]._backend.store.get("doc").content = "vandalized"
    reader = PrivateEditingSession(
        "doc", "pw", server=Shim(), rng=DeterministicRandomSource(6),
    )
    print(f" tampering minority outvoted; reader sees: "
          f"{reader.open()[:40]!r}...")
    print(f" divergence logged: {service.divergences[-1]}\n")


def rekey_demo() -> None:
    print("=== 4. key rotation ===")
    from repro.core import create_document
    doc = create_document("shared with too many people",
                          password="leaked-password", scheme="rpc",
                          rng=DeterministicRandomSource(7))
    server_copy = doc.wire()
    cdelta = doc.rekey(password="fresh-password")
    server_copy = cdelta.apply(server_copy)
    print(" rotated; new password opens:",
          load_document(server_copy, password="fresh-password").text[:20],
          "...")
    try:
        load_document(server_copy, password="leaked-password")
        print(" old password still works (bug!)")
    except Exception:
        print(" old password now fails (revoked)")
    print()


def main() -> None:
    stego_demo()
    freshness_demo()
    replication_demo()
    rekey_demo()
    print("beyond-the-paper demo OK")


if __name__ == "__main__":
    main()
