#!/usr/bin/env python3
"""A realistic editing session, with the adversary's view quantified.

Replays a generated typing trace (bursts of keystrokes, occasional
sentence edits, periodic autosaves — the workload of SVII-C) through
the extension, while a passive eavesdropper records every exchange.
At the end, the adversary's knowledge is summarized: what it saw, what
it could infer (positions, timing, length), and what stayed hidden.

Run:  python examples/private_gdocs_session.py
"""

from repro.crypto.random import DeterministicRandomSource
from repro.extension import PrivateEditingSession
from repro.net.latency import WAN_2011
from repro.security.adversary import EavesdropperTap, HonestButCuriousServer
from repro.security.analysis import shannon_entropy_per_byte
from repro.workloads.documents import small_document
from repro.workloads.traces import make_trace

AUTOSAVE_INTERVAL = 10.0  # seconds, like the periodic client timeout


def main() -> None:
    trace = make_trace(small_document(seed=5), seed=42, duration=60.0)
    print(f"trace: {len(trace.events)} user edits over 60 simulated seconds")

    session = PrivateEditingSession(
        "diary", "hunter2", scheme="rpc", block_chars=8,
        latency=WAN_2011(1), rng=DeterministicRandomSource(9),
    )
    tap = EavesdropperTap()
    session.channel.add_tap(tap)

    session.open()
    session.client.editor.set_text(trace.initial_text)
    session.save()  # the session's first (full) save

    # Replay: batch the trace's edits into autosave windows, exactly as
    # the periodic client-side timeout did.
    window_start = 0.0
    while window_start < 60.0:
        window_end = window_start + AUTOSAVE_INTERVAL
        for delta in trace.deltas_between(window_start, window_end):
            session.client.apply_delta(delta)
        session.save()
        window_start = window_end
    session.close()

    assert session.text == trace.final_text()
    print(f"final document: {len(session.text)} chars "
          f"(user saw every edit applied correctly)")

    # ---- the adversary's view -------------------------------------------
    print("\nAdversary (eavesdropper + curious server) report:")
    updates = tap.observed_updates()
    fulls = [u for u in updates if u.kind == "full"]
    deltas = [u for u in updates if u.kind == "delta"]
    print(f"  observed {len(fulls)} full save(s), {len(deltas)} delta save(s)")
    print(f"  update instants visible at {AUTOSAVE_INTERVAL:.0f}s granularity "
          f"(not per keystroke): "
          f"{[round(u.at, 1) for u in updates[:6]]}...")
    mean_records = sum(
        u.deleted_records + u.inserted_records for u in deltas
    ) / max(1, len(deltas))
    print(f"  mean records rewritten per delta: {mean_records:.1f} "
          f"(positional leakage, blurred to 8-char blocks)")

    for word in set(trace.final_text().split()):
        if len(word) >= 5:
            assert tap.plaintext_sightings(word) == 0
    print("  plaintext sightings of any document word: 0")

    curious = HonestButCuriousServer(session.server.store)
    estimate = curious.length_estimate("diary", block_chars=8)
    print(f"  server's length estimate: ~{estimate} chars "
          f"(true: {len(session.text)})")
    print(f"  ciphertext byte entropy: "
          f"{shannon_entropy_per_byte(curious.current_ciphertext('diary')):.2f} "
          f"bits/byte (8.00 = random)")
    print(f"  stored versions retained by server: "
          f"{len(curious.version_history('diary'))} (all ciphertext)")

    print("\nprivate session OK")


if __name__ == "__main__":
    main()
