#!/usr/bin/env python3
"""The SVII-A functionality matrix, regenerated live.

Drives every Google-Documents feature twice — once plain, once through
the extension — and prints which survive encryption.  Matches the
paper's findings: server-side features (translation, spell checking,
drawing, export) break; client-side features (editing, formatting-like
local operations, word count) and document save/reload keep working;
collaboration is partially functional.

Run:  python examples/functionality_report.py
"""

from repro.bench import render_table
from repro.crypto.random import DeterministicRandomSource
from repro.errors import BlockedRequestError
from repro.extension import PrivateEditingSession

TEXT = "the quick brown fox met a zzyzx and jumped."


def probe(session) -> dict[str, str]:
    """Exercise each feature; report works / blocked / broken."""
    outcomes: dict[str, str] = {}

    def attempt(name, fn, check=lambda r: True):
        try:
            result = fn()
            outcomes[name] = "works" if check(result) else "broken (garbage)"
        except BlockedRequestError:
            outcomes[name] = "blocked by extension"

    attempt("editing + save",
            lambda: (session.type_text(0, "x"), session.save())[-1],
            check=lambda outcome: not outcome.conflict)
    attempt("word count (client side)", session.client.word_count,
            check=lambda n: n > 0)
    attempt("spell checking", session.client.spellcheck,
            check=lambda out: "zzyzx" in out)
    attempt("translation", session.client.translate,
            check=lambda out: "xuq" not in out)  # any response counts
    attempt("export (download as)", session.client.export,
            check=lambda out: "quick" in out)
    attempt("drawing pictures", lambda: session.client.draw("circle"),
            check=lambda out: out.startswith("PNG"))
    attempt("reload from server",
            lambda: PrivateEditingSession(
                session.client.doc_id, "pw", server=session.server,
                rng=DeterministicRandomSource(99),
            ).open(),
            check=lambda text: "quick" in text)
    return outcomes


def main() -> None:
    rows = []
    sessions = {}
    for label, enabled in (("plain", False), ("with extension", True)):
        session = PrivateEditingSession(
            f"doc-{label}", "pw", extension_enabled=enabled,
            rng=DeterministicRandomSource(4),
        )
        session.open()
        session.type_text(0, TEXT)
        session.save()
        sessions[label] = probe(session)

    features = list(sessions["plain"])
    for feature in features:
        rows.append([
            feature,
            sessions["plain"][feature],
            sessions["with extension"][feature],
        ])
    rows.append(["collaborative editing", "works",
                 "partial (passive refresh OK, concurrent edits conflict)"])
    print(render_table(
        ["feature", "plain Google Docs", "under the extension"],
        rows,
        title="SVII-A functionality matrix (regenerated)",
    ))
    print("\nfunctionality report OK")


if __name__ == "__main__":
    main()
