"""Ablation E — sensitivity of the macro numbers to network calibration.

EXPERIMENTS.md claims the Fig. 5 percentages move with the latency
model while the *shape* does not.  This ablation substantiates that: the
same macro case (large file, mixed edits, 1-char rECB) runs under three
calibrations — the default 2011 WAN, a slow uplink (1 MB/s), and a fast
LAN — and the table shows initial-load overhead swinging by an order of
magnitude while every qualitative ordering (load >> edits; slower
network ⇒ *larger* relative crypto/upload overhead on LAN) survives.
"""

from __future__ import annotations

import random

import pytest

from conftest import register_table
from repro.bench import pct, render_table
from repro.bench.macro import MacroCase, run_macro_case
from repro.net.latency import LatencyModel

CASE = MacroCase(
    file_chars=8_000, category="inserts & deletes", scheme="recb",
    block_chars=1, edits_per_session=4, trials=2,
)


def wan_2011(seed: int) -> LatencyModel:
    """The default calibration used by Fig. 5 / Fig. 8."""
    return LatencyModel(rng=random.Random(seed))


def slow_uplink(seed: int) -> LatencyModel:
    """2011 ADSL-class uplink: transfer dominates."""
    return LatencyModel(bytes_per_second=1_000_000.0,
                        rng=random.Random(seed))


def fast_lan(seed: int) -> LatencyModel:
    """Fast local network: crypto/processing dominates."""
    return LatencyModel(
        rtt_mean=0.002, rtt_jitter=0.0005,
        server_mean=0.002, server_jitter=0.0005,
        bytes_per_second=100_000_000.0,
        rng=random.Random(seed),
    )


CALIBRATIONS = {
    "WAN 2011 (default)": wan_2011,
    "slow uplink (1 MB/s)": slow_uplink,
    "fast LAN": fast_lan,
}


@pytest.fixture(scope="module")
def ablation():
    results = {}
    rows = []
    for label, factory in CALIBRATIONS.items():
        report = run_macro_case(CASE, latency_factory=factory)
        results[label] = report
        rows.append([
            label,
            pct(report.initial_load.mean),
            pct(report.edit_ops.mean),
        ])
    register_table("ablation_network", render_table(
        ["calibration", "initial load overhead", "edit overhead"],
        rows,
        title="Ablation E - macro degradation vs network calibration "
              "(8k-char file, mixed edits, 1-char rECB)",
    ))
    return results


class TestAblationNetwork:
    def test_one_macro_run(self, benchmark, ablation):
        small = MacroCase(file_chars=500, category="inserts only",
                          scheme="recb", block_chars=8,
                          edits_per_session=2, trials=1)
        benchmark(lambda: run_macro_case(small))

    def test_shape_survives_every_calibration(self, ablation):
        """Initial load dominates edits under all three networks."""
        for report in ablation.values():
            assert report.initial_load.mean > report.edit_ops.mean

    def test_absolute_numbers_swing_with_calibration(self, ablation):
        """The honest point: percentages are calibration-dependent."""
        loads = [r.initial_load.mean for r in ablation.values()]
        assert max(loads) > 3 * min(loads)

    def test_slow_uplink_amplifies_blowup_cost(self, ablation):
        """The 28x ciphertext upload hurts most where transfer is the
        bottleneck."""
        assert (
            ablation["slow uplink (1 MB/s)"].initial_load.mean
            > ablation["WAN 2011 (default)"].initial_load.mean
        )
