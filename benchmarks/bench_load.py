"""Scale — save latency and aggregate edits/s vs concurrent sessions.

Every number before PR 7 was a *single* session talking to an
in-process callable.  This benchmark measures the stack the way the
paper imagines it deployed: many users, one provider, a real socket in
between.  For each backend it drives 100 / 1,000 / 10,000 concurrent
:class:`PrivateEditingSession`\\ s — faults on, retries live — through
the pooled, pipelined socket transport against the sharded asyncio
server (``repro.net.server``), and reports

* aggregate **edits/s** (edit+save rounds completed per second, all
  sessions together),
* **p50/p99 save latency** (wall-clock over the socket; simulated
  clock deltas for the in-process comparison row),
* a ``single_session`` row measured under identical server settings,
  and ``scaling_x_1000`` — how many times the 1,000-session aggregate
  exceeds it.  One synchronous session is latency-bound (it waits out
  every server handling time in series); a thousand overlap their
  waits across the server's event loop, which is where the ≥10x comes
  from.

An ``inprocess`` comparison row runs the same cell on the simulated
stack — one shared clock, one shared 4 MB/s link
(:class:`repro.net.latency.SharedLink`), so the simulated latencies are
comparable with the socket ones instead of assuming every session owns
the WAN.

Run as a script (``make bench-load``) it writes ``BENCH_load.json``
(schema ``repro.bench.load/v1``) at the repo root, preserving the
first recorded run as ``baseline``; ``--smoke`` runs the 16-session
in-process + socket pair only (wired into ``make test``), and the 10k
cells are pytest-marked ``slow``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.load import SEED, run_load

SCHEMA = "repro.bench.load/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_load.json"

#: the session-count sweep of the issue
SESSION_COUNTS = (100, 1_000, 10_000)
#: backends the sweep measures (gdocs + one whole-file provider)
SERVICES = ("gdocs", "bespin")
FAULT_RATE = 0.05
#: simulated per-request server handling time (socket server);
#: deliberately in the same regime as LatencyModel.server_mean so the
#: socket and simulated charts describe the same kind of provider
SERVICE_TIME = 0.020

#: rounds per session, tapering so every cell stays minutes-bounded
ROUNDS = {100: 4, 1_000: 2, 10_000: 1}
SINGLE_ROUNDS = 40


def run_cells(service: str, counts=SESSION_COUNTS,
              fault_rate: float = FAULT_RATE) -> dict[str, dict]:
    """The full sweep for one backend: single session, each socket
    count, one in-process comparison row, and the scaling ratio."""
    rows: dict[str, dict] = {}
    single = run_load(
        sessions=1, rounds=SINGLE_ROUNDS, service=service,
        transport="socket", workers=1, fault_rate=fault_rate,
        service_time=SERVICE_TIME,
    )
    rows["single_session"] = single.row()
    for count in counts:
        cell = run_load(
            sessions=count, rounds=ROUNDS.get(count, 2), service=service,
            transport="socket", workers=min(96, max(8, count // 8)),
            fault_rate=fault_rate, service_time=SERVICE_TIME,
        )
        rows[f"sessions={count}"] = cell.row()
    inproc = run_load(
        sessions=min(counts), rounds=ROUNDS.get(min(counts), 2),
        service=service, transport="inprocess", fault_rate=fault_rate,
    )
    rows[f"inprocess={min(counts)}"] = inproc.row()
    base = rows["single_session"]["edits_per_sec"]
    key = f"sessions={1_000 if 1_000 in counts else max(counts)}"
    rows["scaling_x_1000"] = round(
        rows[key]["edits_per_sec"] / base, 1) if base else 0.0
    return rows


def run_smoke(sessions: int = 16) -> dict[str, dict]:
    """The small-N pair ``make test`` runs: in-process + socket."""
    socket_cell = run_load(
        sessions=sessions, rounds=2, service="gdocs", transport="socket",
        workers=8, fault_rate=FAULT_RATE, service_time=SERVICE_TIME,
    )
    inproc_cell = run_load(
        sessions=sessions, rounds=2, service="gdocs",
        transport="inprocess", fault_rate=FAULT_RATE,
    )
    return {"socket": socket_cell.row(), "inprocess": inproc_cell.row()}


def write_sidecar(results: dict[str, dict]) -> dict:
    """Write BENCH_load.json, preserving the first-ever run as the
    ``baseline`` later sessions compare against; per-service blocks
    merge over the previous run's (``--service X`` re-measures one)."""
    baseline = None
    previous = {}
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    merged = dict(previous.get("current") or {})
    merged.update(results)
    payload = {
        "schema": SCHEMA,
        "unit": "aggregate edits/sec + save-latency percentiles (ms)",
        "seed": SEED,
        "fault_rate": FAULT_RATE,
        "service_time": SERVICE_TIME,
        "baseline": baseline or merged,  # first-ever run seeds it
        "current": merged,
    }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

import pytest  # noqa: E402


@pytest.fixture(scope="module")
def smoke_pair():
    return run_smoke(sessions=16)


class TestLoadSmoke:
    def test_both_transports_converge(self, smoke_pair):
        for name, row in smoke_pair.items():
            assert row["converged_sample"], name

    def test_both_transports_positive_throughput(self, smoke_pair):
        for name, row in smoke_pair.items():
            assert row["edits_per_sec"] > 0, name

    def test_latency_sources_labelled(self, smoke_pair):
        assert smoke_pair["socket"]["latency_source"] == "wall"
        assert smoke_pair["inprocess"]["latency_source"] == "simulated"

    def test_socket_percentiles_ordered(self, smoke_pair):
        row = smoke_pair["socket"]
        assert 0 < row["save_p50_ms"] <= row["save_p99_ms"]


@pytest.mark.slow
class TestLoadScaling:
    """The full sweep (minutes): concurrency must actually pay."""

    @pytest.fixture(scope="class")
    def gdocs_sweep(self):
        return run_cells("gdocs")

    def test_every_cell_converges(self, gdocs_sweep):
        for label, row in gdocs_sweep.items():
            if isinstance(row, dict):
                assert row["converged_sample"], label

    def test_ten_thousand_sessions_complete(self, gdocs_sweep):
        row = gdocs_sweep["sessions=10000"]
        assert row["saves"] >= 10_000
        assert row["edits_per_sec"] > 0

    def test_scaling_at_one_thousand(self, gdocs_sweep):
        # the acceptance bar is 10x; assert a conservative floor so a
        # noisy CI box doesn't flake the suite
        assert gdocs_sweep["scaling_x_1000"] >= 5.0


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--service", choices=SERVICES + ("all",),
                        default="all",
                        help="re-measure one backend (default: all)")
    parser.add_argument("--sessions", type=int, nargs="*", default=None,
                        help="override the session-count sweep")
    parser.add_argument("--fault-rate", type=float, default=FAULT_RATE)
    parser.add_argument("--smoke", action="store_true",
                        help="16-session in-process + socket pair only "
                             "(no sidecar write)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args(sys.argv[1:])
    if args.smoke:
        results = run_smoke()
        json.dump(results, sys.stdout, indent=2)
        print()
        for name, row in results.items():
            if not row["converged_sample"]:
                sys.exit(f"smoke cell {name} did not converge")
        sys.exit(0)
    counts = tuple(args.sessions) if args.sessions else SESSION_COUNTS
    targets = SERVICES if args.service == "all" else (args.service,)
    results = {
        service: run_cells(service, counts, args.fault_rate)
        for service in targets
    }
    payload = write_sidecar(results)
    json.dump(payload, sys.stdout, indent=2)
    print()
