"""`make metrics-smoke`: one micro-benchmark with the metrics sidecar.

Runs a single end-to-end private-editing exchange (encrypt, one
incremental edit through the mediated channel, decrypt), writes the
metrics sidecar to ``benchmarks/results/metrics-smoke.json``, validates
it against the ``repro.obs/v1`` schema, and sanity-checks that the
load-bearing counters actually moved.  Exit code 0 means the
observability pipeline — instrumentation, registry, JSON export,
schema — is intact; it is wired into the default ``make test`` path.
"""

from __future__ import annotations

import pathlib
import sys

from repro.core import KeyMaterial, create_document, load_document
from repro.crypto.random import DeterministicRandomSource
from repro.extension import PrivateEditingSession
from repro.obs import default_registry
from repro.obs.export import load_sidecar, validate_metrics, write_sidecar

SIDECAR = pathlib.Path(__file__).parent / "results" / "metrics-smoke.json"

#: counters that must be populated after the workload below
REQUIRED_NONZERO = (
    "crypto.aes.calls",
    "crypto.aes.batch_calls",
    "doc.blocks_reencrypted",
    "doc.deltas",
    "index.node_visits",
    "net.exchanges",
    "client.coalesce.bursts",
)


def _workload() -> None:
    """A small but full-stack workload touching every instrumented layer."""
    keys = KeyMaterial.from_password("smoke", salt=b"smokesalt1")
    rng = DeterministicRandomSource(7)
    doc = create_document("the quick brown fox jumps over the lazy dog " * 40,
                          key_material=keys, scheme="rpc", rng=rng)
    doc.insert(10, "metrics ")
    doc.delete(0, 4)
    assert load_document(doc.wire(), key_material=keys).text == doc.text

    session = PrivateEditingSession("smoke-doc", "smoke-password",
                                    scheme="rpc")
    session.open()
    session.type_text(0, "observability smoke test")
    session.save()
    session.type_text(0, "one more delta: ")
    session.save()


def main() -> int:
    """Run the workload, write + validate the sidecar; 0 on success."""
    _workload()

    SIDECAR.parent.mkdir(exist_ok=True)
    write_sidecar(str(SIDECAR))
    sidecar = load_sidecar(str(SIDECAR))  # re-reads and validates
    validate_metrics(sidecar)

    missing = [name for name in REQUIRED_NONZERO
               if not sidecar["counters"].get(name)]
    if missing:
        print(f"metrics-smoke: FAILED — counters never moved: {missing}",
              file=sys.stderr)
        return 1

    # Direction-split parity: every AES invocation is exactly one encrypt
    # or one decrypt, on both the scalar and the batch path, so the split
    # counters must sum to the total no matter how calls were batched.
    counters = sidecar["counters"]
    total = counters.get("crypto.aes.calls", 0)
    split = (counters.get("crypto.aes.encrypt_calls", 0)
             + counters.get("crypto.aes.decrypt_calls", 0))
    if total != split:
        print(f"metrics-smoke: FAILED — crypto.aes.calls={total} but "
              f"encrypt_calls+decrypt_calls={split}; the direction split "
              f"leaked calls on one path", file=sys.stderr)
        return 1

    registered = len(default_registry().names())
    print(f"metrics-smoke: ok — {registered} instruments, sidecar at "
          f"{SIDECAR} is valid {sidecar['schema']}; "
          + " ".join(f"{n}={sidecar['counters'][n]}"
                     for n in REQUIRED_NONZERO))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
