"""Ablation A — the block-index data structure.

SV-C argues no classical structure gives both constant-time updates and
indexing, introduces the IndexedSkipList, and notes the same indexing
idea applies to balanced trees.  This ablation compares, at several
document scales:

* IndexedSkipList (the paper's structure),
* IndexedAVL (the balanced-tree variant the paper sketches),
* ReferenceIndex (a plain list: O(1)-amortized memory moves but O(n)
  scans — the "just use an array" strawman).

Measured: mixed find-by-char / insert / delete / width-update operation
throughput.  Expected shape: the log-time structures stay flat as n
grows 100x while the list's per-op cost grows roughly linearly.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import register_table
from repro.bench import render_table
from repro.datastructures import IndexedAVL, IndexedSkipList, ReferenceIndex

SIZES = [1_000, 10_000, 100_000]
OPS = 2_000

STRUCTURES = {
    "IndexedSkipList": lambda: IndexedSkipList(rng=random.Random(1)),
    "IndexedAVL": IndexedAVL,
    "ReferenceIndex (list)": ReferenceIndex,
}


def _populate(structure, n):
    structure.extend((i, 1 + i % 8) for i in range(n))


def _mixed_ops(structure, count, seed):
    rng = random.Random(seed)
    t0 = time.perf_counter()
    for step in range(count):
        roll = rng.random()
        if roll < 0.4:
            structure.find_char(rng.randrange(structure.total_chars))
        elif roll < 0.6:
            structure.insert(rng.randint(0, len(structure)), step,
                             rng.randint(1, 8))
        elif roll < 0.8 and len(structure) > 1:
            structure.delete(rng.randrange(len(structure)))
        else:
            structure.replace(rng.randrange(len(structure)), step,
                              rng.randint(1, 8))
    return (time.perf_counter() - t0) / count


@pytest.fixture(scope="module")
def ablation():
    results: dict[tuple[str, int], float] = {}
    for name, factory in STRUCTURES.items():
        for n in SIZES:
            ops = OPS if name != "ReferenceIndex (list)" or n <= 10_000 else 300
            structure = factory()
            _populate(structure, n)
            results[(name, n)] = _mixed_ops(structure, ops, seed=n)
    rows = [
        [name] + [f"{results[(name, n)] * 1e6:.1f} us" for n in SIZES]
        for name in STRUCTURES
    ]
    register_table("ablation_structures", render_table(
        ["structure"] + [f"n={n}" for n in SIZES],
        rows,
        title="Ablation A - per-operation cost of the block index "
              "(mixed find/insert/delete/update)",
    ))
    return results


class TestAblationStructures:
    @pytest.mark.parametrize("name", list(STRUCTURES))
    def test_mixed_ops(self, benchmark, ablation, name):
        structure = STRUCTURES[name]()
        _populate(structure, 10_000)
        rng = random.Random(7)

        def one_op():
            structure.find_char(rng.randrange(structure.total_chars))

        benchmark(one_op)

    def test_shape_log_structures_scale(self, ablation):
        """100x more blocks must NOT cost ~100x more per op for the
        log-time structures (allow 6x for cache effects)..."""
        for name in ("IndexedSkipList", "IndexedAVL"):
            assert ablation[(name, 100_000)] < ablation[(name, 1_000)] * 6

    def test_shape_list_degrades(self, ablation):
        """...while the flat list visibly degrades with n."""
        list_name = "ReferenceIndex (list)"
        assert (
            ablation[(list_name, 100_000)]
            > ablation[(list_name, 1_000)] * 10
        )

    def test_shape_crossover(self, ablation):
        """At 100k blocks (a ~full-size document at b=1) the log
        structures beat the list outright."""
        for name in ("IndexedSkipList", "IndexedAVL"):
            assert (
                ablation[(name, 100_000)]
                < ablation[("ReferenceIndex (list)", 100_000)]
            )
