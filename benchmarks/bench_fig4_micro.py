"""Fig. 4 — micro-benchmark of cryptographic operations (RPC mode).

Paper setup (SVII-B): test cases are pairs (D, D') of random documents
with lengths uniform in [100, 10000]; for each pair a delta is derived
that transforms D into D'.  Measured: time to encrypt D, time to
transform the delta (incremental encryption), time to decrypt D' — all
normalized per character, plus the resulting plaintext throughput.

Paper numbers (Firefox 3 JS AES on a 2008 Core 2 Duo):
    encryption .091 ms/char, decryption .085 ms/char,
    incremental .110 ms/char; throughput 9.1-11.8 kB/s.
Our absolute numbers differ (CPython + NumPy-batched AES); the paper's
*shape* — all three within a small factor of each other, incremental
slightly above plain encryption per delta-char — is what to compare.
"""

from __future__ import annotations

import pytest

from conftest import register_table
from repro.bench import (
    Sample,
    Stopwatch,
    metrics_cell,
    ms_per_char,
    render_table,
)
from repro.core import KeyMaterial, create_document, load_document
from repro.crypto.random import DeterministicRandomSource
from repro.workloads.diff import simple_delta
from repro.workloads.documents import micro_pairs

#: the paper ran 1000 tests; a smaller deterministic sample keeps the
#: whole bench suite fast while the per-char averages stabilize well
PAIR_COUNT = 25

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt1")


def _rng():
    return DeterministicRandomSource(4)


#: counters reported in the table's operation-count column
TRACKED = ("crypto.aes.calls", "index.node_visits", "index.splices",
           "index.range_visits")


def _run_micro(scheme: str = "rpc") -> tuple[dict[str, Sample],
                                             dict[str, dict[str, float]]]:
    enc = Sample()
    dec = Sample()
    inc = Sample()
    ops: dict[str, dict[str, float]] = {}
    for pair in micro_pairs(PAIR_COUNT, seed=44):
        delta = simple_delta(pair.before, pair.after)
        delta_chars = max(1, delta.chars_inserted + delta.chars_deleted)

        watch = Stopwatch(track=TRACKED)
        with watch.measure():
            doc = create_document(pair.before, key_material=KEYS,
                                  scheme=scheme, rng=_rng())
        enc.add(ms_per_char(watch.laps[-1], len(pair.before)))

        with watch.measure():
            doc.apply_delta(delta)
        inc.add(ms_per_char(watch.laps[-1], delta_chars))

        wire = doc.wire()
        with watch.measure():
            reloaded = load_document(wire, key_material=KEYS)
        assert reloaded.text == pair.after
        dec.add(ms_per_char(watch.laps[-1], max(1, len(pair.after))))

        for label, lap in zip(("encryption (D)", "incremental encryption",
                               "decryption (D')"), watch.lap_metrics):
            totals = ops.setdefault(label, dict.fromkeys(TRACKED, 0.0))
            for name in TRACKED:
                totals[name] += lap[name]
    return ({"encryption (D)": enc, "decryption (D')": dec,
             "incremental encryption": inc}, ops)


@pytest.fixture(scope="module")
def micro_results():
    results, ops = _run_micro()
    recb, _ = _run_micro(scheme="recb")
    throughput = 1.0 / results["encryption (D)"].mean  # chars/ms ~ kB/s
    rows = [
        [name, f"{sample.mean:.5f} ms", f"dev {sample.dev:.5f}",
         f"{recb[name].mean:.5f} ms", metrics_cell(ops[name])]
        for name, sample in results.items()
    ]
    rows.append(["throughput", f"{throughput:.1f} kB/s plaintext", "",
                 f"{1.0 / recb['encryption (D)'].mean:.1f} kB/s", ""])
    register_table("fig4_micro", render_table(
        ["operation", "RPC avg (per char)", "", "rECB avg",
         "ops (RPC total)"],
        rows,
        title=f"Fig. 4 - micro-benchmark, RPC mode "
              f"(averages from {PAIR_COUNT} tests; rECB shown for the "
              f"paper's 'slightly better' comparison)",
    ))
    return results


class TestFig4:
    def test_encrypt_whole_document(self, benchmark, micro_results):
        [pair] = list(micro_pairs(1, seed=7, min_chars=5000, max_chars=5000))
        benchmark(
            lambda: create_document(pair.before, key_material=KEYS,
                                    scheme="rpc", rng=_rng())
        )

    def test_decrypt_whole_document(self, benchmark, micro_results):
        [pair] = list(micro_pairs(1, seed=8, min_chars=5000, max_chars=5000))
        wire = create_document(pair.before, key_material=KEYS, scheme="rpc",
                               rng=_rng()).wire()
        benchmark(lambda: load_document(wire, key_material=KEYS))

    def test_incremental_encryption(self, benchmark, micro_results):
        [pair] = list(micro_pairs(1, seed=9, min_chars=5000, max_chars=5000,
                                  related=True))
        delta = simple_delta(pair.before, pair.after)

        def transform():
            doc = create_document(pair.before, key_material=KEYS,
                                  scheme="rpc", rng=_rng())
            doc.apply_delta(delta)

        benchmark(transform)

    def test_shape_recb_no_slower_than_rpc(self, micro_results):
        """SVII-B: "the performance of confidentiality-only mode is
        slightly better than RPC" — allow generous noise headroom."""
        recb, _ = _run_micro(scheme="recb")
        assert (recb["encryption (D)"].mean
                <= micro_results["encryption (D)"].mean * 1.5)

    def test_shape_incremental_close_to_encryption(self, micro_results):
        """The paper's qualitative claim: per processed character, the
        incremental path costs the same order as plain encryption."""
        enc = micro_results["encryption (D)"].mean
        inc = micro_results["incremental encryption"].mean
        assert inc < enc * 20
        assert enc < inc * 20
