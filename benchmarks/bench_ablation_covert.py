"""Ablation C — covert-channel bandwidth vs countermeasures (SVI-B).

A malicious client (adversary-supplied, per the paper's stronger threat
model) smuggles symbols through properties of its encrypted traffic.
For each channel we drive the full stack — malicious client, mediating
extension, simulated server — and measure the server-side decoder's
accuracy, then the effective bits per update, under each mediator
configuration.

Expected shape: the delta-shape channel is perfect with no mitigation
and survives *structural* canonicalization (a delete-and-reinsert of
identical text is canonical), but is destroyed by recomputing deltas
from document versions — exactly the two mitigation tiers SVI-B
sketches.  The timing channel dies under random delays.  The length
channel survives everything implemented (the paper, likewise, only
gestures at padding the document itself).
"""

from __future__ import annotations

import math
import random

import pytest

from conftest import register_table
from repro.bench import render_table
from repro.client.malicious import ShapeLeakClient
from repro.core.delta import Delete, Delta
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import RECORD_CHARS
from repro.extension import Countermeasures, GDocsExtension, PasswordVault
from repro.net.channel import Channel
from repro.security.covert import ChannelReport, TimingChannel
from repro.services.gdocs import protocol
from repro.services.gdocs.server import GDocsServer
from repro.workloads.diff import derive_delta

SYMBOLS = [3, 7, 1, 9, 5, 2, 8, 4]
BITS_PER_SYMBOL = math.log2(16)


def _stack(countermeasures, seed):
    server = GDocsServer()
    channel = Channel(server)
    extension = GDocsExtension(
        PasswordVault({"doc": "pw"}),
        rng=DeterministicRandomSource(seed),
        countermeasures=countermeasures,
        clock=channel.clock,
    )
    channel.set_mediator(extension)
    client = ShapeLeakClient(channel, "doc")
    client.open()
    client.type_text(0, "y" * 400)
    client.save()
    return channel, client


def _observed_deleted_records(channel):
    for exchange in reversed(channel.exchange_log):
        form = exchange.request.form if exchange.request.body else {}
        if protocol.F_DELTA in form:
            cdelta = Delta.parse(form[protocol.F_DELTA])
            return sum(
                op.count for op in cdelta.ops if isinstance(op, Delete)
            ) // RECORD_CHARS
    return 0


def run_shape_channel(countermeasures, recompute: bool,
                      seed: int) -> ChannelReport:
    """Drive the shape channel; optionally apply the paper's 'recompute
    deltas from versions' mitigation inside the measurement loop."""
    channel, client = _stack(countermeasures, seed)

    def mediate(delta_text, base_text):
        if not recompute:
            return delta_text
        delta = Delta.parse(delta_text)
        return derive_delta(base_text, delta.apply(base_text)).serialize()

    # Calibrate the noise floor with symbol 0.
    def send(symbol):
        base = client.editor.synced_text
        client.queue_symbol(symbol)
        client.type_text(len(client.editor.text), "a")
        # Intercept the shaped delta before the extension if recomputing.
        if recompute:
            shaped = client._channel_enc.encode(
                symbol, base, client.editor.pending_delta()
            )
            clean = mediate(shaped.serialize(), base)
            client._pending_symbols.clear()
            request = protocol.delta_save_request(
                client.doc_id, client._sid, client._rev, clean
            )
            channel.send(request)
            client._rev += 1
            client.editor.mark_synced()
        else:
            client.save()
        return _observed_deleted_records(channel)

    floor = send(0)
    correct = 0
    for symbol in SYMBOLS:
        decoded = max(0, send(symbol) - floor)
        if decoded == symbol:
            correct += 1
    return ChannelReport(len(SYMBOLS), correct, BITS_PER_SYMBOL)


def run_timing_channel(countermeasures, seed: int) -> ChannelReport:
    channel, client = _stack(countermeasures, seed)
    timing = TimingChannel()
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    # Baseline gap without an encoded bit:
    t0 = channel.clock.now()
    client.type_text(0, "z")
    client.save()
    base_gap = channel.clock.now() - t0
    correct = 0
    for bit in bits:
        start = channel.clock.now()
        channel.clock.advance(timing.encode_delay(bit))
        client.type_text(0, "z")
        client.save()
        gap = channel.clock.now() - start
        if timing.decode(gap, base_gap) == bit:
            correct += 1
    return ChannelReport(len(bits), correct, 1.0)


@pytest.fixture(scope="module")
def ablation():
    configs = [
        ("none (paper default)", Countermeasures.none(), False),
        ("canonicalize deltas", Countermeasures(canonicalize_deltas=True),
         False),
        ("recompute from versions", Countermeasures.none(), True),
    ]
    rows = []
    results = {}
    for idx, (label, cm, recompute) in enumerate(configs):
        report = run_shape_channel(cm, recompute, seed=idx + 1)
        results[("shape", label)] = report
        rows.append(["delta shape", label,
                     f"{report.accuracy * 100:.0f}%",
                     f"{report.effective_bits_per_update:.2f}"])
    for idx, (label, cm) in enumerate([
        ("none (paper default)", Countermeasures.none()),
        ("random delays",
         Countermeasures(random_delay=True, delay_max_seconds=1.0,
                         rng=random.Random(3))),
    ]):
        report = run_timing_channel(cm, seed=10 + idx)
        results[("timing", label)] = report
        rows.append(["timing", label,
                     f"{report.accuracy * 100:.0f}%",
                     f"{report.effective_bits_per_update:.2f}"])
    register_table("ablation_covert", render_table(
        ["channel", "countermeasure", "decoder accuracy",
         "effective bits/update"],
        rows,
        title="Ablation C - covert-channel bandwidth vs countermeasures",
    ))
    return results


class TestAblationCovert:
    def test_shape_channel_throughput(self, benchmark, ablation):
        benchmark(lambda: run_shape_channel(Countermeasures.none(), False,
                                            seed=99))

    def test_shape_channel_perfect_without_mitigation(self, ablation):
        assert ablation[("shape", "none (paper default)")].accuracy == 1.0

    def test_canonicalization_insufficient(self, ablation):
        """Structural canonicalization alone leaves the channel open —
        the honest negative result motivating trusted recompute."""
        assert ablation[("shape", "canonicalize deltas")].accuracy > 0.5

    def test_recompute_kills_shape_channel(self, ablation):
        report = ablation[("shape", "recompute from versions")]
        assert report.accuracy <= 0.25
        assert report.effective_bits_per_update == 0.0

    def test_random_delay_degrades_timing_channel(self, ablation):
        clean = ablation[("timing", "none (paper default)")]
        jittered = ablation[("timing", "random delays")]
        assert clean.accuracy == 1.0
        assert jittered.accuracy < clean.accuracy
