"""Collaboration — conflict rate and convergence time vs writer count.

Before PR 8 a stale save had exactly one future: a ``conflict``
answer, a client-side resync, and another try.  With N writers on one
document that pipeline admits roughly one landing per round — the
conflict rate climbs toward 1 and convergence time grows with N².
This benchmark measures what the server-side OT merge path
(``repro.services.ot``) buys: for 2 / 8 / 32 / 100 writers sharing one
encrypted document it reports, per backend and over both transports,

* **conflict rate** — conflicted saves per non-noop save attempt,
* **merges** — stale saves the server rebased and acked with a
  ``mergePatch`` instead of rejecting,
* **convergence time** — from the last edit until every writer is
  looking at the same drained document (wall-clock over the socket,
  simulated-clock deltas in-process),
* the zero-leak tap — a lowercase sentinel typed by writer 0 must
  never appear in any exchanged bytes (Base32 ciphertext is
  uppercase-only).

Three variants sweep the writer counts: ``gdocs`` with the merge path
on, ``gdocs`` with it off (the conflict/resync baseline every headline
ratio is stated against), and ``bespin`` (whole-file — no delta
language to merge, so its cells ride full-document re-uploads and a
settle-save round).  The headline is the 32-writer gdocs pair: the
acceptance bar is a ≥5x lower conflict rate with the merge path on.

Run as a script (``make bench-collab``) it writes ``BENCH_collab.json``
(schema ``repro.bench.collab/v1``) at the repo root, preserving the
first recorded run as ``baseline``; ``--smoke`` runs the 8-writer
merge/baseline pair only.  The full-sweep assertions are pytest-marked
``slow``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.collab import SEED, run_collab

SCHEMA = "repro.bench.collab/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_collab.json"

#: the writer-count sweep of the issue
WRITER_COUNTS = (2, 8, 32, 100)
#: (service, merge) variants; merge=False on gdocs is the baseline
VARIANTS = (
    ("gdocs_merge", "gdocs", True),
    ("gdocs_conflict", "gdocs", False),
    ("bespin", "bespin", False),
)
TRANSPORTS = ("inprocess", "socket")
#: the writer count the headline ratio is stated at
HEADLINE_WRITERS = 32

#: edit rounds per writer, tapering so the N² baseline drain keeps
#: every cell minutes-bounded
ROUNDS = {2: 6, 8: 4, 32: 3, 100: 2}


def run_cells(service: str, merge: bool,
              counts=WRITER_COUNTS) -> dict[str, dict]:
    """The sweep for one (service, merge) variant: every writer count
    over both transports."""
    rows: dict[str, dict] = {}
    for count in counts:
        for transport in TRANSPORTS:
            cell = run_collab(
                writers=count, rounds=ROUNDS.get(count, 2),
                service=service, merge=merge, transport=transport,
            )
            rows[f"writers={count}/{transport}"] = cell.row()
    return rows


def headline(results: dict[str, dict],
             writers: int = HEADLINE_WRITERS) -> dict:
    """The 32-writer gdocs pair the acceptance bar is stated on."""
    key = f"writers={writers}/inprocess"
    base = results["gdocs_conflict"][key]
    merged = results["gdocs_merge"][key]
    rate_base, rate_merge = base["conflict_rate"], merged["conflict_rate"]
    return {
        "writers": writers,
        "baseline_conflict_rate": rate_base,
        "merge_conflict_rate": rate_merge,
        # None when the merge path produced zero conflicts (the ratio
        # is unbounded); the ≥5x bar is asserted on the rates directly
        "improvement_x": (round(rate_base / rate_merge, 1)
                          if rate_merge else None),
        "baseline_convergence_s": base["convergence_s"],
        "merge_convergence_s": merged["convergence_s"],
        "merges": merged["merges"],
    }


def run_smoke(writers: int = 8) -> dict[str, dict]:
    """The small merge/baseline pair ``--smoke`` runs (in-process)."""
    merged = run_collab(writers=writers, rounds=3, merge=True)
    base = run_collab(writers=writers, rounds=3, merge=False)
    return {"merge": merged.row(), "conflict_baseline": base.row()}


def write_sidecar(results: dict[str, dict]) -> dict:
    """Write BENCH_collab.json, preserving the first-ever run as the
    ``baseline`` later sessions compare against."""
    baseline = None
    previous = {}
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    merged = dict(previous.get("current") or {})
    merged.update(results)
    payload = {
        "schema": SCHEMA,
        "unit": "conflict rate (conflicts/save) + convergence time (s)",
        "seed": SEED,
        "writer_counts": list(WRITER_COUNTS),
        "baseline": baseline or merged,  # first-ever run seeds it
        "current": merged,
    }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

import pytest  # noqa: E402


@pytest.fixture(scope="module")
def smoke_pair():
    return run_smoke(writers=8)


class TestCollabSmoke:
    def test_cells_converge_without_leaks(self, smoke_pair):
        for name, row in smoke_pair.items():
            assert row["converged"], name
            assert row["leak_clean"], name

    def test_merge_path_collapses_conflicts(self, smoke_pair):
        merged = smoke_pair["merge"]
        base = smoke_pair["conflict_baseline"]
        assert merged["merges"] > 0
        assert merged["conflict_rate"] < base["conflict_rate"]

    def test_merge_path_converges_faster(self, smoke_pair):
        assert (smoke_pair["merge"]["convergence_s"]
                < smoke_pair["conflict_baseline"]["convergence_s"])


@pytest.mark.slow
class TestCollabSweep:
    """The headline cells (minutes): merging must actually pay at N."""

    @pytest.fixture(scope="class")
    def gdocs_pair(self):
        return {
            "merge": run_cells("gdocs", True, counts=(HEADLINE_WRITERS,)),
            "base": run_cells("gdocs", False, counts=(HEADLINE_WRITERS,)),
        }

    def test_every_cell_converges_without_leaks(self, gdocs_pair):
        for variant in gdocs_pair.values():
            for label, row in variant.items():
                assert row["converged"], label
                assert row["leak_clean"], label

    def test_conflict_rate_at_least_five_x_lower(self, gdocs_pair):
        for transport in TRANSPORTS:
            key = f"writers={HEADLINE_WRITERS}/{transport}"
            base = gdocs_pair["base"][key]["conflict_rate"]
            merged = gdocs_pair["merge"][key]["conflict_rate"]
            assert base >= 5 * merged, (transport, base, merged)
            assert gdocs_pair["merge"][key]["merges"] > 0

    def test_bespin_settles_by_reopen(self):
        row = run_collab(writers=HEADLINE_WRITERS, rounds=2,
                         service="bespin", merge=False)
        assert row.converged and row.leak_clean
        assert row.drain_rounds == 1  # settle round, not drain-to-noop


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--variant",
                        choices=tuple(v[0] for v in VARIANTS) + ("all",),
                        default="all",
                        help="re-measure one variant (default: all)")
    parser.add_argument("--writers", type=int, nargs="*", default=None,
                        help="override the writer-count sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="8-writer merge/baseline pair only "
                             "(no sidecar write)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args(sys.argv[1:])
    if args.smoke:
        results = run_smoke()
        json.dump(results, sys.stdout, indent=2)
        print()
        for name, row in results.items():
            if not (row["converged"] and row["leak_clean"]):
                sys.exit(f"smoke cell {name} failed its oracle")
        sys.exit(0)
    counts = tuple(args.writers) if args.writers else WRITER_COUNTS
    results = {}
    for name, service, merge in VARIANTS:
        if args.variant not in ("all", name):
            continue
        results[name] = run_cells(service, merge, counts)
    if args.variant == "all" and HEADLINE_WRITERS in counts:
        results["headline"] = headline(results)
    payload = write_sidecar(results)
    json.dump(payload["current"].get("headline", payload["current"]),
              sys.stdout, indent=2)
    print()
