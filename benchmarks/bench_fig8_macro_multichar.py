"""Fig. 8 — macro-benchmark with 8-character-block incremental rECB.

Paper setup (SVII-D): the macro-benchmark of Fig. 5 re-run with the
8-characters-per-block rECB scheme on the large (~10000 chars) file.

Paper numbers: initial load 18 %, inserts only 8.8 %, deletes only
7.5 %, inserts & deletes 12.6 % — "compared to Figure 5, the
performance overhead increases slightly, but the ciphertext blowup is
reduced from 23x to less than 5x".  (The *load* overhead actually falls
vs Fig. 5's 43 % because the upload shrinks with the blow-up; the paper
highlights the same trade.)
"""

from __future__ import annotations

import pytest

from conftest import register_table
from repro.bench import pct, render_table
from repro.bench.macro import MacroCase, run_macro_case
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.workloads import CATEGORIES, LARGE_FILE_CHARS
from repro.workloads.documents import large_document

BLOCK_CHARS = 8


@pytest.fixture(scope="module")
def fig8():
    rows = []
    results = {}
    load_case = MacroCase(LARGE_FILE_CHARS, "inserts only", "recb",
                          BLOCK_CHARS, edits_per_session=4, trials=2)
    load = run_macro_case(load_case).initial_load
    rows.append(["initial load", pct(load.mean), f"{load.dev:.3f}"])
    results["initial load"] = load.mean
    for category in CATEGORIES:
        case = MacroCase(LARGE_FILE_CHARS, category, "recb", BLOCK_CHARS,
                         edits_per_session=4, trials=2)
        sample = run_macro_case(case).edit_ops
        rows.append([category, pct(sample.mean), f"{sample.dev:.3f}"])
        results[category] = sample.mean

    doc = create_document(large_document(1),
                          key_material=KeyMaterial.from_password(
                              "bench", salt=b"benchsalt8"),
                          scheme="recb", block_chars=BLOCK_CHARS,
                          rng=DeterministicRandomSource(8))
    rows.append(["(ciphertext blowup)", f"{doc.blowup():.2f}x", ""])
    register_table("fig8_macro_multichar", render_table(
        ["workload", "mean", "dev"],
        rows,
        title=f"Fig. 8 - macro-benchmark, {BLOCK_CHARS}-char rECB, "
              f"large (~{LARGE_FILE_CHARS} chars) file",
    ))
    results["blowup"] = doc.blowup()
    return results


class TestFig8:
    def test_one_macro_case(self, benchmark, fig8):
        case = MacroCase(LARGE_FILE_CHARS, "inserts & deletes", "recb",
                         BLOCK_CHARS, edits_per_session=2, trials=1)
        benchmark(lambda: run_macro_case(case))

    def test_shape_blowup_under_five(self, fig8):
        """The paper's headline for Fig. 8: blow-up below 5x."""
        assert fig8["blowup"] < 5.0

    def test_shape_load_cheaper_than_one_char_blocks(self, fig8):
        """b=8's smaller upload makes the initial load far cheaper than
        Fig. 5's 1-char-block configuration."""
        one_char = run_macro_case(MacroCase(
            LARGE_FILE_CHARS, "inserts only", "recb", 1,
            edits_per_session=2, trials=1,
        )).initial_load
        assert fig8["initial load"] < one_char.mean

    def test_shape_edits_stay_single_digit(self, fig8):
        for category in CATEGORIES:
            assert fig8[category] < 0.10
