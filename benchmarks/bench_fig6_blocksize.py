"""Fig. 6 — impact of block size on multi-character incremental
encryption (rECB, 10000-character documents).

Paper setup (SVII-D): the micro-benchmark of SVII-B with the original
document length fixed at 10000 characters, sweeping the block-capacity
parameter b = 1..8.  Two panels:

  (a) encrypting whole documents — per-char cost falls as b grows
      (fewer AES blocks per character);
  (b) incremental updates — the SkipIndexList bookkeeping overhead is
      visible at b=1 but "well compensated by setting the block size to
      7 or above".

Shape to reproduce: both curves decrease with b; the b=8 point costs a
fraction of the b=1 point.
"""

from __future__ import annotations

import pytest

from conftest import register_table
from repro.bench import Sample, Stopwatch, ms_per_char, render_table
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.workloads.diff import simple_delta
from repro.workloads.documents import document_of_length, micro_pairs

DOC_CHARS = 10_000
BLOCK_SIZES = list(range(1, 9))
TRIALS = 6

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt6")


def _rng():
    return DeterministicRandomSource(6)


@pytest.fixture(scope="module")
def sweep():
    whole: dict[int, Sample] = {}
    incremental: dict[int, Sample] = {}
    for b in BLOCK_SIZES:
        whole[b] = Sample()
        incremental[b] = Sample()
        for trial in range(TRIALS):
            text = document_of_length(DOC_CHARS, seed=trial)
            watch = Stopwatch()
            with watch.measure():
                doc = create_document(text, key_material=KEYS,
                                      scheme="recb", block_chars=b,
                                      rng=_rng())
            whole[b].add(ms_per_char(watch.laps[-1], DOC_CHARS))

            [pair] = list(micro_pairs(1, seed=100 + trial, related=True,
                                      min_chars=DOC_CHARS,
                                      max_chars=DOC_CHARS))
            doc2 = create_document(pair.before, key_material=KEYS,
                                   scheme="recb", block_chars=b,
                                   rng=_rng())
            delta = simple_delta(pair.before, pair.after)
            delta_chars = max(1, delta.chars_inserted + delta.chars_deleted)
            with watch.measure():
                doc2.apply_delta(delta)
            incremental[b].add(ms_per_char(watch.laps[-1], delta_chars))

    rows = [
        [str(b),
         f"{whole[b].mean:.5f}", f"{whole[b].dev:.5f}",
         f"{incremental[b].mean:.5f}", f"{incremental[b].dev:.5f}"]
        for b in BLOCK_SIZES
    ]
    register_table("fig6_blocksize", render_table(
        ["block size",
         "(a) whole-doc ms/char", "dev",
         "(b) incremental ms/char", "dev"],
        rows,
        title=f"Fig. 6 - impact of block size "
              f"(rECB, {DOC_CHARS}-char documents, {TRIALS} trials)",
    ))
    return whole, incremental


class TestFig6:
    @pytest.mark.parametrize("b", [1, 4, 8])
    def test_whole_document_encryption(self, benchmark, sweep, b):
        text = document_of_length(DOC_CHARS, seed=0)
        benchmark(
            lambda: create_document(text, key_material=KEYS, scheme="recb",
                                    block_chars=b, rng=_rng())
        )

    @pytest.mark.parametrize("b", [1, 8])
    def test_incremental_update(self, benchmark, sweep, b):
        text = document_of_length(DOC_CHARS, seed=0)
        doc = create_document(text, key_material=KEYS, scheme="recb",
                              block_chars=b, rng=_rng())
        positions = iter(range(10 ** 9))

        def one_edit():
            doc.insert(next(positions) % DOC_CHARS, "x")

        benchmark(one_edit)

    def test_shape_whole_doc_cost_decreases(self, sweep):
        whole, _ = sweep
        assert whole[8].mean < whole[4].mean < whole[1].mean
        assert whole[8].mean < whole[1].mean / 2

    def test_shape_incremental_cost_decreases(self, sweep):
        _, incremental = sweep
        assert incremental[8].mean < incremental[1].mean
