"""Fig. 5 — macro-benchmark: end-to-end save-latency degradation.

Paper setup (SVII-C): Selenium-driven sessions on small (~500 chars) and
large (~10000 chars) files; a test case is a whole-document save
followed by sentence-level inserts / deletes / mixed edits; each case
runs with and without the extension and the latency overhead is
reported.  Block size is 1 character (the multi-character variant is
Fig. 8).

Paper numbers (degradation mean):
    small:  initial load 24-25 %, inserts 6-7 %, deletes 3-4.5 %,
            mixed 7.4-9 %
    large:  initial load 43-45 %, inserts 8-10 %, deletes ~4 %,
            mixed 11-13 %

Expected shape here (see EXPERIMENTS.md for the calibration): initial
load is by far the most expensive (ciphertext blow-up inflates the full
upload), per-edit overhead stays in single digits, deletes are cheaper
than inserts, large files cost more than small, and RPC tracks rECB
closely.  Absolute percentages differ because our crypto:network ratio
differs from a 2008 JS engine on a 2011 WAN.
"""

from __future__ import annotations

import pytest

from conftest import register_table
from repro.bench import pct, render_table
from repro.bench.macro import MacroCase, run_macro_case
from repro.workloads import CATEGORIES, LARGE_FILE_CHARS, SMALL_FILE_CHARS


@pytest.fixture(scope="module")
def fig5_table():
    sections = []
    shape = {}
    for label, file_chars in (("small (~500 chars)", SMALL_FILE_CHARS),
                              ("large (~10000 chars)", LARGE_FILE_CHARS)):
        rows = []
        for scheme in ("recb", "rpc"):
            reports = {}
            load_case = MacroCase(file_chars, "inserts only", scheme, 1,
                                  edits_per_session=4, trials=2)
            for category in CATEGORIES:
                case = MacroCase(file_chars, category, scheme, 1,
                                 edits_per_session=4, trials=2)
                reports[category] = run_macro_case(case)
            load = run_macro_case(load_case).initial_load
            rows.append([scheme, "initial load", pct(load.mean),
                         f"{load.dev:.3f}"])
            for category in CATEGORIES:
                sample = reports[category].edit_ops
                rows.append([scheme, category, pct(sample.mean),
                             f"{sample.dev:.3f}"])
                shape[(label, scheme, category)] = sample.mean
            shape[(label, scheme, "initial load")] = load.mean
        sections.append(render_table(
            ["scheme", "workload", "mean", "dev"],
            rows,
            title=f"Fig. 5 - macro-benchmark degradation, {label}, "
                  f"1-char blocks",
        ))
    register_table("fig5_macro", "\n".join(sections))
    return shape


class TestFig5:
    def test_save_with_extension(self, benchmark, fig5_table):
        """Benchmark one representative extension-mediated edit+save."""
        from repro.crypto.random import DeterministicRandomSource
        from repro.extension import PrivateEditingSession
        from repro.workloads.documents import small_document

        session = PrivateEditingSession(
            "bench", "pw", scheme="recb", block_chars=1,
            rng=DeterministicRandomSource(1),
        )
        session.open()
        session.client.editor.set_text(small_document(1))
        session.save()
        counter = iter(range(10 ** 9))

        def edit_and_save():
            session.type_text(0, f"edit {next(counter)} ")
            session.save()

        benchmark(edit_and_save)

    def test_shape_initial_load_dominates(self, fig5_table):
        for label in ("small (~500 chars)", "large (~10000 chars)"):
            for scheme in ("recb", "rpc"):
                load = fig5_table[(label, scheme, "initial load")]
                for category in CATEGORIES:
                    assert load > fig5_table[(label, scheme, category)]

    def test_shape_large_load_exceeds_small(self, fig5_table):
        for scheme in ("recb", "rpc"):
            assert (
                fig5_table[("large (~10000 chars)", scheme, "initial load")]
                > fig5_table[("small (~500 chars)", scheme, "initial load")]
            )

    def test_shape_deletes_cheapest_edits(self, fig5_table):
        for label in ("small (~500 chars)", "large (~10000 chars)"):
            for scheme in ("recb", "rpc"):
                deletes = fig5_table[(label, scheme, "deletes only")]
                inserts = fig5_table[(label, scheme, "inserts only")]
                assert deletes <= inserts + 0.01
