"""Fig. 7 — ciphertext blow-up reduction from multi-character blocks.

Paper numbers (blow-up factor and reduction relative to b=1):

    block size   1      2      3     4     5     6     7     8
    blowup     21.00  10.71  7.35  6.09  4.83  4.41  3.78  3.75
    reduction    0%    49%    65%   71%   77%   79%   82%   82%

and SVII-D notes "the actual reduction is less than the ideal reduction
due to fragmentation".  Our wire format stores 28 Base32 characters per
record (17 raw bytes: count header + AES block), so the *ideal* blow-up
is ~28/b plus bookkeeping; the measured value is taken after an editing
churn that fragments blocks, reproducing the ideal-vs-actual gap.
"""

from __future__ import annotations

import random

import pytest

from conftest import register_table
from repro.bench import render_table
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.encoding.wire import RECORD_CHARS
from repro.workloads.documents import document_of_length
from repro.workloads.edits import edit_stream

DOC_CHARS = 10_000
BLOCK_SIZES = list(range(1, 9))
CHURN_EDITS = 60

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt7")


def _churned_document(b: int):
    """Encrypt a 10k doc, then apply an editing session to fragment it."""
    text = document_of_length(DOC_CHARS, seed=3)
    doc = create_document(text, key_material=KEYS, scheme="recb",
                          block_chars=b, rng=DeterministicRandomSource(7))
    rng = random.Random(b)
    current = text
    for delta in edit_stream(text, "inserts & deletes", rng, CHURN_EDITS):
        current = delta.apply(current)
        doc.apply_delta(delta)
    return doc


@pytest.fixture(scope="module")
def blowups():
    fresh: dict[int, float] = {}
    churned: dict[int, float] = {}
    for b in BLOCK_SIZES:
        text = document_of_length(DOC_CHARS, seed=3)
        doc = create_document(text, key_material=KEYS, scheme="recb",
                              block_chars=b,
                              rng=DeterministicRandomSource(7))
        fresh[b] = doc.blowup()
        churned[b] = _churned_document(b).blowup()

    base = churned[1]
    rows = []
    for b in BLOCK_SIZES:
        ideal = RECORD_CHARS / b  # data records only, perfectly packed
        rows.append([
            str(b),
            f"{ideal:.2f}x",
            f"{fresh[b]:.2f}x",
            f"{churned[b]:.2f}x",
            f"{(1 - churned[b] / base) * 100:.0f}%",
        ])
    register_table("fig7_blowup", render_table(
        ["block size", "ideal", "fresh (greedy)", "after churn (measured)",
         "reduction vs b=1"],
        rows,
        title=f"Fig. 7 - ciphertext blow-up vs block size "
              f"({DOC_CHARS}-char doc, {CHURN_EDITS} churn edits)",
    ))
    return fresh, churned


class TestFig7:
    def test_measure_blowup_sweep(self, benchmark, blowups):
        """Benchmark the measurement itself on one configuration."""
        benchmark(lambda: _churned_document(8).blowup())

    def test_shape_blowup_monotone_decreasing(self, blowups):
        _, churned = blowups
        for smaller, larger in zip(BLOCK_SIZES, BLOCK_SIZES[1:]):
            assert churned[larger] <= churned[smaller] + 0.01

    def test_shape_reduction_reaches_paper_band(self, blowups):
        """The paper reports an 82% reduction at b=8; ours must land in
        the same region (>= 70%)."""
        _, churned = blowups
        reduction = 1 - churned[8] / churned[1]
        assert reduction >= 0.70

    def test_shape_fragmentation_gap(self, blowups):
        """Measured (churned) blow-up exceeds the fresh greedy packing —
        the paper's ideal-vs-actual fragmentation gap."""
        fresh, churned = blowups
        assert churned[8] > fresh[8]

    def test_quota_headroom(self, blowups):
        """SV-C's motivation: at b=1 a 10k-char document's ciphertext
        would eat most of Google's 500 kB cap; at b=8 it fits easily."""
        _, churned = blowups
        from repro.services.gdocs.storage import MAX_DOCUMENT_CHARS
        assert DOC_CHARS * churned[1] > MAX_DOCUMENT_CHARS / 2
        assert DOC_CHARS * churned[8] < MAX_DOCUMENT_CHARS / 8
