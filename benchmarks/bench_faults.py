"""Fault tolerance under load — edits/sec and retries vs fault rate.

The resilience machinery (``repro.net.faults`` + ``repro.net.policy``)
is only worth its complexity if (a) a fault-free session pays almost
nothing for it and (b) a faulty session degrades gracefully — retries
and resyncs, not lost edits.  This benchmark drives a resilient
:class:`PrivateEditingSession` through the same edit script at fault
rates 0% / 1% / 5% / 20% and reports

* sustained edits/sec (wall-clock, includes retry work),
* retries, injected faults, resyncs, and idempotent replays straight
  from the obs registry,
* whether the session **converged** (stored ciphertext decrypts to the
  user's final text) — which must be True at every rate.

Since the resilience core is provider-agnostic
(``repro.client.resilient``), the sweep also runs per backend: every
service in ``repro.services.registry.SERVICE_NAMES`` gets its own rows
(``--service X`` re-measures just one), so the sidecar answers "does
graceful degradation hold on Bespin/Buzzword/replicated too, and what
does whole-file re-sending cost relative to deltas?".

Run as a script (``make bench-faults``) it writes the
``BENCH_faults.json`` sidecar at the repo root, preserving the first
recorded run as ``baseline`` (same convention as
``BENCH_edit_throughput.json``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

from repro.crypto.random import DeterministicRandomSource
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FaultPlan, updates_only
from repro.net.policy import RetryPolicy
from repro.obs import capture
from repro.services import registry
from repro.workloads.text import make_text

SCHEMA = "repro.bench.faults/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_faults.json"

#: per-exchange fault probability per kind, the sweep of the issue
RATES = (0.0, 0.01, 0.05, 0.20)
#: the shorter per-backend sweep (every backend, three weathers)
SERVICE_RATES = (0.0, 0.05, 0.20)
SCHEME = "rpc"
SEED = 20110613  # the paper's year+venue, fixed forever


def _session(rate: float, service: str) -> tuple[PrivateEditingSession,
                                                 FaultPlan]:
    plan = FaultPlan.uniform(rate, seed=SEED, match=updates_only)
    session = PrivateEditingSession(
        f"bench-{rate}", "bench-password", scheme=SCHEME,
        faults=plan, retry_policy=RetryPolicy(seed=SEED),
        verify_acks=True, rng=DeterministicRandomSource(SEED),
        service=service,
    )
    return session, plan


def _run_rate(rate: float, edits: int,
              service: str = "gdocs") -> dict[str, float | bool]:
    """One measured session: ``edits`` edit+save rounds at ``rate``."""
    session, plan = _session(rate, service)
    rng = random.Random(SEED + int(rate * 1000))
    session.open()
    session.client.editor.set_text(make_text(2_000, rng))
    failures = 0
    with capture() as cap:
        t0 = time.perf_counter()
        if not session.save().ok:
            failures += 1
        for _ in range(edits):
            length = len(session.text)
            ncut = rng.randint(0, 8)
            pos = rng.randrange(max(1, length - ncut))
            session.delete_text(pos, min(ncut, length - pos))
            session.type_text(pos, "y" * rng.randint(1, 10))
            if not session.save().ok:
                failures += 1
        plan.quiesce()
        if not session.save().ok:
            failures += 1
        if not registry.backend_for(service).capabilities.revisioned:
            # whole-file stores: land one more save after any
            # reorder-held stale request has flushed (see repro.fuzz)
            session.save()
        elapsed = time.perf_counter() - t0
    recovered = registry.decrypt_view(
        service, session.server_view(), "bench-password", SCHEME
    )
    return {
        "edits_per_sec": round(edits / elapsed, 1),
        "faults_injected": cap["net.faults.injected"],
        "retries": cap["client.retries.attempts"],
        "timeouts": cap["client.retries.timeouts"],
        "resyncs": cap["client.resyncs"],
        "idem_replays": cap["extension.idem_replays"],
        "dedup_hits": cap["services.gdocs.dedup_hits"],
        "save_failures": failures,
        "converged": recovered == session.text,
    }


def run_suite(edits: int = 60, service: str = "gdocs",
              rates: tuple = RATES) -> dict[str, dict]:
    """The rate sweep for one backend; keys are labels ("rate=5%")."""
    return {
        f"rate={rate:.0%}": _run_rate(rate, edits, service)
        for rate in rates
    }


def run_service_suite(edits: int = 30,
                      services: tuple = registry.SERVICE_NAMES
                      ) -> dict[str, dict]:
    """Per-backend rows: the shorter sweep for every named service."""
    return {
        service: run_suite(edits, service, rates=SERVICE_RATES)
        for service in services
    }


def write_sidecar(results: dict, services: dict | None = None) -> dict:
    """Write BENCH_faults.json, preserving the first-ever run as the
    ``baseline`` later sessions compare against.  ``services`` rows
    merge over the previous run's, so ``--service X`` re-measures one
    backend without discarding the others."""
    baseline = None
    previous = {}
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    merged = dict(previous.get("services") or {})
    merged.update(services or {})
    payload = {
        "schema": SCHEMA,
        "unit": "edits/sec (plus obs-registry fault/retry counts)",
        "scheme": SCHEME,
        "seed": SEED,
        "baseline": baseline,
        "current": results if results else previous.get("current"),
        "services": merged,
    }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

def _register(results: dict) -> None:
    from conftest import register_table
    from repro.bench import render_table

    rows = [
        [label,
         f"{row['edits_per_sec']:.0f} edits/s",
         f"{row['faults_injected']:.0f}",
         f"{row['retries']:.0f}",
         f"{row['resyncs']:.0f}",
         "yes" if row["converged"] else "NO"]
        for label, row in results.items()
    ]
    register_table("faults", render_table(
        ["fault rate", "throughput", "injected", "retries", "resyncs",
         "converged"],
        rows,
        title="Fault tolerance - resilient session under uniform chaos",
    ))


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def fault_sweep():
    results = run_suite(edits=30)
    _register(results)
    return results


@pytest.fixture(scope="module")
def service_sweep():
    return run_service_suite(edits=10)


class TestFaultSweep:
    def test_converges_at_every_rate(self, fault_sweep):
        for label, row in fault_sweep.items():
            assert row["converged"], label

    def test_clean_rate_injects_nothing(self, fault_sweep):
        clean = fault_sweep["rate=0%"]
        assert clean["faults_injected"] == 0
        assert clean["retries"] == 0
        assert clean["save_failures"] == 0

    def test_faulty_rates_actually_fault_and_retry(self, fault_sweep):
        worst = fault_sweep["rate=20%"]
        assert worst["faults_injected"] > 0
        assert worst["retries"] > 0

    def test_throughput_positive_everywhere(self, fault_sweep):
        for label, row in fault_sweep.items():
            assert row["edits_per_sec"] > 0, label


class TestServiceSweep:
    def test_every_backend_converges_at_every_rate(self, service_sweep):
        for service, rows in service_sweep.items():
            for label, row in rows.items():
                assert row["converged"], f"{service} {label}"

    def test_every_backend_measured(self, service_sweep):
        assert set(service_sweep) == set(registry.SERVICE_NAMES)
        for rows in service_sweep.values():
            for row in rows.values():
                assert row["edits_per_sec"] > 0

    def test_whole_file_backends_never_resync(self, service_sweep):
        """No revisions -> nothing to resync against; their recovery
        is pure full-save retransmission."""
        for service in ("bespin", "buzzword"):
            for label, row in service_sweep[service].items():
                assert row["resyncs"] == 0, f"{service} {label}"


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--service", choices=registry.SERVICE_NAMES + ("all",),
        default="all",
        help="re-measure one backend's rows (default: gdocs sweep "
             "plus every backend)")
    parser.add_argument("--edits", type=int, default=60,
                        help="edit+save rounds per measured session")
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args(sys.argv[1:])
    if args.service == "all":
        suite = run_suite(args.edits)
        services = run_service_suite(max(10, args.edits // 2))
    else:
        # one backend only: keep the previous gdocs sweep, merge rows
        suite = None
        services = run_service_suite(max(10, args.edits // 2),
                                     services=(args.service,))
    payload = write_sidecar(suite, services)
    json.dump(payload, sys.stdout, indent=2)
    print()
