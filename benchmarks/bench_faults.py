"""Fault tolerance under load — edits/sec and retries vs fault rate.

The resilience machinery (``repro.net.faults`` + ``repro.net.policy``)
is only worth its complexity if (a) a fault-free session pays almost
nothing for it and (b) a faulty session degrades gracefully — retries
and resyncs, not lost edits.  This benchmark drives a resilient
:class:`PrivateEditingSession` through the same edit script at fault
rates 0% / 1% / 5% / 20% and reports

* sustained edits/sec (wall-clock, includes retry work),
* retries, injected faults, resyncs, and idempotent replays straight
  from the obs registry,
* whether the session **converged** (stored ciphertext decrypts to the
  user's final text) — which must be True at every rate.

Run as a script (``make bench-faults``) it writes the
``BENCH_faults.json`` sidecar at the repo root, preserving the first
recorded run as ``baseline`` (same convention as
``BENCH_edit_throughput.json``).
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

from repro.core.transform import EncryptionEngine
from repro.crypto.random import DeterministicRandomSource
from repro.extension.session import PrivateEditingSession
from repro.net.faults import FaultPlan, updates_only
from repro.net.policy import RetryPolicy
from repro.obs import capture
from repro.workloads.text import make_text

SCHEMA = "repro.bench.faults/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_faults.json"

#: per-exchange fault probability per kind, the sweep of the issue
RATES = (0.0, 0.01, 0.05, 0.20)
SCHEME = "rpc"
SEED = 20110613  # the paper's year+venue, fixed forever


def _session(rate: float, edits: int) -> tuple[PrivateEditingSession,
                                               FaultPlan]:
    plan = FaultPlan.uniform(rate, seed=SEED, match=updates_only)
    session = PrivateEditingSession(
        f"bench-{rate}", "bench-password", scheme=SCHEME,
        faults=plan, retry_policy=RetryPolicy(seed=SEED),
        verify_acks=True, rng=DeterministicRandomSource(SEED),
    )
    return session, plan


def _run_rate(rate: float, edits: int) -> dict[str, float | bool]:
    """One measured session: ``edits`` edit+save rounds at ``rate``."""
    session, plan = _session(rate, edits)
    rng = random.Random(SEED + int(rate * 1000))
    session.open()
    session.client.editor.set_text(make_text(2_000, rng))
    failures = 0
    with capture() as cap:
        t0 = time.perf_counter()
        if not session.save().ok:
            failures += 1
        for _ in range(edits):
            length = len(session.text)
            ncut = rng.randint(0, 8)
            pos = rng.randrange(max(1, length - ncut))
            session.delete_text(pos, min(ncut, length - pos))
            session.type_text(pos, "y" * rng.randint(1, 10))
            if not session.save().ok:
                failures += 1
        plan.quiesce()
        if not session.save().ok:
            failures += 1
        elapsed = time.perf_counter() - t0
    recovered = EncryptionEngine(
        password="bench-password", scheme=SCHEME
    ).decrypt(session.server_view())
    return {
        "edits_per_sec": round(edits / elapsed, 1),
        "faults_injected": cap["net.faults.injected"],
        "retries": cap["client.retries.attempts"],
        "timeouts": cap["client.retries.timeouts"],
        "resyncs": cap["client.resyncs"],
        "idem_replays": cap["extension.idem_replays"],
        "dedup_hits": cap["services.gdocs.dedup_hits"],
        "save_failures": failures,
        "converged": recovered == session.text,
    }


def run_suite(edits: int = 60) -> dict[str, dict]:
    """The rate sweep; keys are percent labels ("rate=5%")."""
    return {
        f"rate={rate:.0%}": _run_rate(rate, edits) for rate in RATES
    }


def write_sidecar(results: dict) -> dict:
    """Write BENCH_faults.json, preserving the first-ever run as the
    ``baseline`` later sessions compare against."""
    baseline = None
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    payload = {
        "schema": SCHEMA,
        "unit": "edits/sec (plus obs-registry fault/retry counts)",
        "scheme": SCHEME,
        "seed": SEED,
        "baseline": baseline,
        "current": results,
    }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

def _register(results: dict) -> None:
    from conftest import register_table
    from repro.bench import render_table

    rows = [
        [label,
         f"{row['edits_per_sec']:.0f} edits/s",
         f"{row['faults_injected']:.0f}",
         f"{row['retries']:.0f}",
         f"{row['resyncs']:.0f}",
         "yes" if row["converged"] else "NO"]
        for label, row in results.items()
    ]
    register_table("faults", render_table(
        ["fault rate", "throughput", "injected", "retries", "resyncs",
         "converged"],
        rows,
        title="Fault tolerance - resilient session under uniform chaos",
    ))


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def fault_sweep():
    results = run_suite(edits=30)
    _register(results)
    return results


class TestFaultSweep:
    def test_converges_at_every_rate(self, fault_sweep):
        for label, row in fault_sweep.items():
            assert row["converged"], label

    def test_clean_rate_injects_nothing(self, fault_sweep):
        clean = fault_sweep["rate=0%"]
        assert clean["faults_injected"] == 0
        assert clean["retries"] == 0
        assert clean["save_failures"] == 0

    def test_faulty_rates_actually_fault_and_retry(self, fault_sweep):
        worst = fault_sweep["rate=20%"]
        assert worst["faults_injected"] > 0
        assert worst["retries"] > 0

    def test_throughput_positive_everywhere(self, fault_sweep):
        for label, row in fault_sweep.items():
            assert row["edits_per_sec"] > 0, label


if __name__ == "__main__":
    suite = run_suite()
    payload = write_sidecar(suite)
    json.dump(payload, sys.stdout, indent=2)
    print()
