"""Edit throughput — edits/sec vs document size, client and server.

The paper's sub-linearity claim (SV) is about the *whole* edit
pipeline: the client-side IncE transform (index search + cluster
re-encryption) and the server-side delta apply both have to stay
sub-linear in document size, or interactive editing dies at scale.
This benchmark measures sustained edits/sec at several document sizes
for

* the client IncE path (``EncryptedDocument.apply_delta``), for both
  schemes (rECB, RPC) and both block-index backends (IndexedSkipList,
  IndexedAVL), and
* the server store (``DocumentStore.apply_delta``), which applies
  opaque deltas to the stored text.

Run as a script (``make bench-edits``) it writes the
``BENCH_edit_throughput.json`` sidecar at the repo root.  The sidecar
keeps the *first* recorded run as ``baseline`` forever, so the perf
trajectory across PRs stays visible: ``current`` vs ``baseline`` is
the speedup delivered since the file was first written (the pre-splice,
pre-piece-table edit pipeline).
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

from repro.core import Delta, KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.datastructures import IndexedAVL, IndexedSkipList
from repro.services.gdocs.storage import DocumentStore
from repro.workloads.text import make_text

SCHEMA = "repro.bench.edit_throughput/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_edit_throughput.json"

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt1")

#: plaintext sizes for the client IncE path (chars)
CLIENT_SIZES = [5_000, 20_000, 80_000]
#: stored sizes for the server store path (chars; quota is 500k)
SERVER_SIZES = [10_000, 100_000, 400_000]

INDEXES = {
    "skiplist": lambda: IndexedSkipList(rng=random.Random(5)),
    "avl": IndexedAVL,
}


def _edit_deltas(rng: random.Random, length: int, count: int) -> list[Delta]:
    """Small localized replacements; document length stays a bounded
    random walk so a pre-generated delta always fits."""
    deltas = []
    for _ in range(count):
        ncut = rng.randint(1, 12)
        pos = rng.randrange(max(1, length - ncut))
        text = "x" * rng.randint(1, 12)
        deltas.append(Delta.replacement(pos, ncut, text))
        length += len(text) - ncut
    return deltas


def _client_eps(scheme: str, index: str, size: int, edits: int) -> float:
    """Sustained client-side edits/sec at the given document size."""
    rng = random.Random(size * 31 + edits)
    text = make_text(size, rng)
    doc = create_document(text, key_material=KEYS, scheme=scheme,
                          rng=DeterministicRandomSource(9),
                          index_factory=INDEXES[index])
    deltas = _edit_deltas(rng, doc.char_length, edits)
    t0 = time.perf_counter()
    for delta in deltas:
        doc.apply_delta(delta)
    return edits / (time.perf_counter() - t0)


def _server_eps(size: int, edits: int) -> float:
    """Sustained server-side (store) edits/sec at the given size."""
    rng = random.Random(size * 17 + edits)
    store = DocumentStore()
    store.create("doc", make_text(size, rng))
    wire_deltas = [d.serialize()
                   for d in _edit_deltas(rng, size, edits)]
    t0 = time.perf_counter()
    for wire in wire_deltas:
        store.apply_delta("doc", wire)
    return edits / (time.perf_counter() - t0)


def run_suite(client_edits: int = 120,
              server_edits: int = 400) -> dict[str, dict[str, float]]:
    """Measure every configuration; keys are flat human-readable labels."""
    results: dict[str, dict[str, float]] = {"client": {}, "server": {}}
    for scheme in ("recb", "rpc"):
        for index in INDEXES:
            for size in CLIENT_SIZES:
                label = f"{scheme}/{index}/n={size}"
                results["client"][label] = round(
                    _client_eps(scheme, index, size, client_edits), 1
                )
    for size in SERVER_SIZES:
        results["server"][f"n={size}"] = round(
            _server_eps(size, server_edits), 1
        )
    return results


def write_sidecar(results: dict) -> dict:
    """Write BENCH_edit_throughput.json, preserving the first-ever run
    as the ``baseline`` the acceptance comparison is made against."""
    baseline = None
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    payload = {
        "schema": SCHEMA,
        "unit": "edits/sec",
        "baseline": baseline,
        "current": results,
    }
    if baseline:
        payload["speedup"] = {
            section: {
                label: round(results[section][label] / base, 2)
                for label, base in baseline[section].items()
                if label in results.get(section, {}) and base
            }
            for section in baseline
        }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

def _register(results: dict) -> None:
    from conftest import register_table
    from repro.bench import render_table

    labels = sorted(results["client"]) + sorted(results["server"])
    rows = [
        [label, f"{results['client' if label in results['client'] else 'server'][label]:.0f} edits/s"]
        for label in labels
    ]
    register_table("edit_throughput", render_table(
        ["configuration", "throughput"], rows,
        title="Edit throughput - client IncE and server store, by "
              "document size",
    ))


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def throughput():
    results = run_suite(client_edits=60, server_edits=150)
    _register(results)
    return results


class TestEditThroughput:
    def test_positive_throughput_everywhere(self, throughput):
        for section in ("client", "server"):
            for label, eps in throughput[section].items():
                assert eps > 0, label

    def test_shape_client_stays_sublinear(self, throughput):
        """16x more document must not cost anywhere near 16x per edit
        for the log-index client path (generous 8x headroom)."""
        for scheme in ("recb", "rpc"):
            for index in INDEXES:
                small = throughput["client"][f"{scheme}/{index}/n={CLIENT_SIZES[0]}"]
                large = throughput["client"][f"{scheme}/{index}/n={CLIENT_SIZES[-1]}"]
                assert large > small / 8, (scheme, index)


if __name__ == "__main__":
    suite = run_suite()
    payload = write_sidecar(suite)
    json.dump(payload, sys.stdout, indent=2)
    print()
