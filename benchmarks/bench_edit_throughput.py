"""Edit throughput — edits/sec vs document size, client and server.

The paper's sub-linearity claim (SV) is about the *whole* edit
pipeline: the client-side IncE transform (index search + cluster
re-encryption) and the server-side delta apply both have to stay
sub-linear in document size, or interactive editing dies at scale.
This benchmark measures sustained edits/sec at several document sizes
for

* the client IncE path (``EncryptedDocument.apply_delta``), for both
  schemes (rECB, RPC) and both block-index backends (IndexedSkipList,
  IndexedAVL), and
* the server store (``DocumentStore.apply_delta``), which applies
  opaque deltas to the stored text.

Run as a script (``make bench-edits``) it writes the
``BENCH_edit_throughput.json`` sidecar at the repo root.  The sidecar
keeps the *first* recorded run as ``baseline`` forever, so the perf
trajectory across PRs stays visible: ``current`` vs ``baseline`` is
the speedup delivered since the file was first written (the pre-splice,
pre-piece-table edit pipeline).
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

from repro.client.coalesce import EditCoalescer
from repro.core import Delta, KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.datastructures import IndexedAVL, IndexedSkipList
from repro.services.gdocs.storage import DocumentStore
from repro.workloads.text import make_text

SCHEMA = "repro.bench.edit_throughput/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_edit_throughput.json"

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt1")

#: plaintext sizes for the client IncE path (chars)
CLIENT_SIZES = [5_000, 20_000, 80_000]
#: stored sizes for the server store path (chars; quota is 500k)
SERVER_SIZES = [10_000, 100_000, 400_000]
#: keystrokes coalesced per IncE pass on the burst curve (1 = the old
#: one-pass-per-keystroke client)
BURST_SIZES = [1, 8, 32]
#: a current cell below this fraction of its recorded baseline fails
#: ``make bench-edits`` loudly
REGRESSION_FLOOR = 0.9

INDEXES = {
    "skiplist": lambda: IndexedSkipList(rng=random.Random(5)),
    "avl": IndexedAVL,
}


def _edit_deltas(rng: random.Random, length: int, count: int) -> list[Delta]:
    """Small localized replacements; document length stays a bounded
    random walk so a pre-generated delta always fits."""
    deltas = []
    for _ in range(count):
        ncut = rng.randint(1, 12)
        pos = rng.randrange(max(1, length - ncut))
        text = "x" * rng.randint(1, 12)
        deltas.append(Delta.replacement(pos, ncut, text))
        length += len(text) - ncut
    return deltas


#: timed repetitions per cell; the cell reports the fastest.  Best-of-k
#: is the standard defence against scheduler/frequency noise: real
#: slowdowns slow every rep, noise only slows some.
BENCH_REPS = 3


def _best_eps(measure, reps: int = BENCH_REPS) -> float:
    """Fastest of ``reps`` timed runs of ``measure()`` (edits/sec)."""
    return max(measure() for _ in range(reps))


def _client_eps(scheme: str, index: str, size: int, edits: int) -> float:
    """Sustained client-side edits/sec at the given document size."""
    def measure() -> float:
        rng = random.Random(size * 31 + edits)
        text = make_text(size, rng)
        doc = create_document(text, key_material=KEYS, scheme=scheme,
                              rng=DeterministicRandomSource(9),
                              index_factory=INDEXES[index])
        deltas = _edit_deltas(rng, doc.char_length, edits)
        t0 = time.perf_counter()
        for delta in deltas:
            doc.apply_delta(delta)
        return edits / (time.perf_counter() - t0)
    return _best_eps(measure)


def _keystroke_deltas(rng: random.Random, length: int,
                      count: int) -> list[Delta]:
    """Keystroke-level edits the way typing produces them: runs of
    single-character inserts (with occasional backspaces) at a cursor
    that occasionally jumps to a new edit site.  This is the workload
    coalescing exists for — adjacent ops fold into one small delta."""
    deltas: list[Delta] = []
    cursor = rng.randrange(max(1, length))
    for _ in range(count):
        if rng.random() < 0.04:
            cursor = rng.randrange(max(1, length))
        if rng.random() < 0.12 and cursor > 0:  # backspace
            cursor -= 1
            length -= 1
            deltas.append(Delta.deletion(cursor, 1))
        else:
            deltas.append(Delta.insertion(cursor, rng.choice("abcdefgh ")))
            cursor += 1
            length += 1
    return deltas


def _burst_eps(scheme: str, index: str, size: int, keystrokes: int,
               burst: int) -> float:
    """Sustained *keystrokes*/sec when the client folds ``burst`` of
    them into one coalesced IncE pass (burst=1 is the old per-keystroke
    client).  Compose cost is inside the timed region — it is part of
    the client's real per-keystroke bill."""
    def measure() -> float:
        rng = random.Random(size * 13 + keystrokes + burst)
        text = make_text(size, rng)
        doc = create_document(text, key_material=KEYS, scheme=scheme,
                              rng=DeterministicRandomSource(9),
                              index_factory=INDEXES[index])
        deltas = _keystroke_deltas(rng, doc.char_length, keystrokes)
        journal = EditCoalescer(max_ops=burst)
        t0 = time.perf_counter()
        for delta in deltas:
            ready = journal.add(delta)
            if ready is not None:
                doc.apply_delta(ready)
        ready = journal.flush("drain")
        if ready is not None:
            doc.apply_delta(ready)
        return keystrokes / (time.perf_counter() - t0)
    return _best_eps(measure)


def _server_eps(size: int, edits: int) -> float:
    """Sustained server-side (store) edits/sec at the given size."""
    def measure() -> float:
        rng = random.Random(size * 17 + edits)
        store = DocumentStore()
        store.create("doc", make_text(size, rng))
        wire_deltas = [d.serialize()
                       for d in _edit_deltas(rng, size, edits)]
        t0 = time.perf_counter()
        for wire in wire_deltas:
            store.apply_delta("doc", wire)
        return edits / (time.perf_counter() - t0)
    return _best_eps(measure)


def run_suite(client_edits: int = 120,
              server_edits: int = 400,
              burst_keystrokes: int = 256) -> dict[str, dict[str, float]]:
    """Measure every configuration; keys are flat human-readable labels."""
    results: dict[str, dict[str, float]] = {
        "client": {}, "client_burst": {}, "server": {},
    }
    for scheme in ("recb", "rpc"):
        for index in INDEXES:
            for size in CLIENT_SIZES:
                label = f"{scheme}/{index}/n={size}"
                results["client"][label] = round(
                    _client_eps(scheme, index, size, client_edits), 1
                )
            for burst in BURST_SIZES:
                for size in CLIENT_SIZES:
                    label = f"{scheme}/{index}/burst={burst}/n={size}"
                    results["client_burst"][label] = round(
                        _burst_eps(scheme, index, size,
                                   burst_keystrokes, burst), 1
                    )
    for size in SERVER_SIZES:
        results["server"][f"n={size}"] = round(
            _server_eps(size, server_edits), 1
        )
    return results


def burst_speedups(results: dict) -> dict[str, float]:
    """Keystrokes/sec gained by coalescing: each burst>1 cell over its
    burst=1 sibling (same scheme x index x size, same run)."""
    cells = results.get("client_burst", {})
    out: dict[str, float] = {}
    for label, eps in cells.items():
        config, _, tail = label.partition("/burst=")
        burst, _, size = tail.partition("/")
        if burst == "1":
            continue
        base = cells.get(f"{config}/burst=1/{size}")
        if base:
            out[label] = round(eps / base, 2)
    return out


def write_sidecar(results: dict) -> dict:
    """Write BENCH_edit_throughput.json, preserving the first-ever run
    as the ``baseline`` the acceptance comparison is made against."""
    baseline = None
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    payload = {
        "schema": SCHEMA,
        "unit": "edits/sec",
        "baseline": baseline,
        "current": results,
    }
    if baseline:
        payload["speedup"] = {
            section: {
                label: round(results[section][label] / base, 2)
                for label, base in baseline[section].items()
                if label in results.get(section, {}) and base
            }
            for section in baseline
        }
    payload["burst_speedup"] = burst_speedups(results)
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def regressions(payload: dict) -> list[str]:
    """Cells whose current throughput fell below
    ``REGRESSION_FLOOR`` x their recorded baseline."""
    found = []
    for section, ratios in payload.get("speedup", {}).items():
        for label, ratio in ratios.items():
            if ratio < REGRESSION_FLOOR:
                found.append(f"{section}/{label}: {ratio}x baseline")
    return found


# -- pytest mode (collected with the other bench_* figures) --------------

def _register(results: dict) -> None:
    from conftest import register_table
    from repro.bench import render_table

    rows = [
        [label, f"{results[section][label]:.0f} edits/s"]
        for section in ("client", "client_burst", "server")
        for label in sorted(results.get(section, {}))
    ]
    register_table("edit_throughput", render_table(
        ["configuration", "throughput"], rows,
        title="Edit throughput - client IncE (per keystroke and "
              "coalesced bursts) and server store, by document size",
    ))


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def throughput():
    results = run_suite(client_edits=60, server_edits=150,
                        burst_keystrokes=128)
    _register(results)
    return results


class TestEditThroughput:
    def test_positive_throughput_everywhere(self, throughput):
        for section in ("client", "client_burst", "server"):
            for label, eps in throughput[section].items():
                assert eps > 0, label

    def test_shape_client_stays_sublinear(self, throughput):
        """16x more document must not cost anywhere near 16x per edit
        for the log-index client path (generous 8x headroom)."""
        for scheme in ("recb", "rpc"):
            for index in INDEXES:
                small = throughput["client"][f"{scheme}/{index}/n={CLIENT_SIZES[0]}"]
                large = throughput["client"][f"{scheme}/{index}/n={CLIENT_SIZES[-1]}"]
                assert large > small / 8, (scheme, index)

    def test_shape_coalescing_scales_keystroke_rate(self, throughput):
        """The tentpole claim: folding a keystroke burst into one IncE
        pass multiplies sustained keystrokes/sec.  The full 5x shows on
        the sidecar's longer runs; here a conservative 2.5x guards the
        shape against machine noise."""
        size = CLIENT_SIZES[-1]
        for scheme in ("recb", "rpc"):
            for index in INDEXES:
                flat = throughput["client_burst"][
                    f"{scheme}/{index}/burst=1/n={size}"]
                bursty = throughput["client_burst"][
                    f"{scheme}/{index}/burst={BURST_SIZES[-1]}/n={size}"]
                assert bursty > 2.5 * flat, (scheme, index, flat, bursty)


def _warmup() -> None:
    """A few hundred edits before timing: stabilizes frequency scaling
    and warms allocator/import costs out of the first measured cell."""
    _client_eps("rpc", "skiplist", 5_000, 60)
    _server_eps(10_000, 200)


if __name__ == "__main__":
    _warmup()
    suite = run_suite()
    payload = write_sidecar(suite)
    json.dump(payload, sys.stdout, indent=2)
    print()
    failed = regressions(payload)
    if failed:
        print("bench-edits: REGRESSION below "
              f"{REGRESSION_FLOOR}x baseline:", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
