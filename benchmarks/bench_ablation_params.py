"""Ablation D — design-parameter sensitivity.

Two knobs DESIGN.md calls out but the paper fixes silently:

* the SkipList pole-growth probability **p** (Pugh's parameter; the
  paper inherits 0.5).  Sweeping p shows the flat optimum around
  0.25-0.5 — the structure is robust to it, justifying not exposing it;
* the **index structure** end-to-end: the same editing session on
  EncryptedDocument backed by the IndexedSkipList vs. the IndexedAVL.
  Both are within noise of each other — the index is not the
  bottleneck once AES and wire encoding are in the loop, confirming
  the paper's "any balanced structure would do" remark.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import register_table
from repro.bench import render_table
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.datastructures import IndexedAVL, IndexedSkipList
from repro.workloads.documents import document_of_length
from repro.workloads.edits import edit_stream

KEYS = KeyMaterial.from_password("bench", salt=b"benchsaltD")
DOC_CHARS = 10_000
EDITS = 40

P_VALUES = [0.125, 0.25, 0.5, 0.75]


def _skiplist_ops_per_second(p: float) -> float:
    structure = IndexedSkipList(p=p, rng=random.Random(1))
    structure.extend((i, 1 + i % 8) for i in range(20_000))
    rng = random.Random(2)
    count = 4_000
    t0 = time.perf_counter()
    for step in range(count):
        roll = rng.random()
        if roll < 0.5:
            structure.find_char(rng.randrange(structure.total_chars))
        elif roll < 0.75:
            structure.insert(rng.randint(0, len(structure)), step,
                             rng.randint(1, 8))
        else:
            structure.delete(rng.randrange(len(structure)))
    return count / (time.perf_counter() - t0)


def _session_seconds(index_factory) -> float:
    text = document_of_length(DOC_CHARS, seed=1)
    doc = create_document(text, key_material=KEYS, scheme="recb",
                          block_chars=8, rng=DeterministicRandomSource(3),
                          index_factory=index_factory)
    rng = random.Random(4)
    t0 = time.perf_counter()
    current = text
    for delta in edit_stream(text, "inserts & deletes", rng, EDITS):
        current = delta.apply(current)
        doc.apply_delta(delta)
    return time.perf_counter() - t0


@pytest.fixture(scope="module")
def ablation():
    p_rates = {p: _skiplist_ops_per_second(p) for p in P_VALUES}
    p_rows = [
        [f"p={p}", f"{rate / 1000:.0f}k ops/s"]
        for p, rate in p_rates.items()
    ]
    structures = {
        "IndexedSkipList": lambda: IndexedSkipList(rng=random.Random(7)),
        "IndexedAVL": IndexedAVL,
    }
    session_times = {
        name: _session_seconds(factory)
        for name, factory in structures.items()
    }
    end_rows = [
        [name, f"{seconds * 1000:.0f} ms / {EDITS} edits"]
        for name, seconds in session_times.items()
    ]
    register_table("ablation_params", render_table(
        ["knob", "result"],
        p_rows + end_rows,
        title="Ablation D - SkipList p sweep (20k blocks, mixed ops) and "
              "end-to-end index choice (10k-char doc)",
    ))
    return {"sessions": session_times, "p_rates": p_rates}


class TestAblationParams:
    def test_skiplist_mixed_ops(self, benchmark, ablation):
        structure = IndexedSkipList(rng=random.Random(9))
        structure.extend((i, 4) for i in range(20_000))
        rng = random.Random(10)
        benchmark(
            lambda: structure.find_char(rng.randrange(structure.total_chars))
        )

    def test_p_is_a_flat_knob(self, ablation):
        """Within 3x across an 6x p range: not worth exposing."""
        rates = ablation["p_rates"]
        assert max(rates.values()) < 3 * min(rates.values())

    def test_index_choice_immaterial_end_to_end(self, ablation):
        sessions = ablation["sessions"]
        ratio = max(sessions.values()) / min(sessions.values())
        assert ratio < 2.5  # well within noise of each other
