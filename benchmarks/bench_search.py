"""Encrypted search & audit trail — the workspace's scaling bill.

Three costs decide whether the multi-document workspace (PR 10) stays
interactive, and this benchmark measures all three:

* **query latency vs corpus size** — a trapdoor lookup against the
  catalog plus client-side posting decryption, over corpora of 1k /
  10k / 100k documents.  The posting map is keyed by trapdoor, so
  latency must stay flat-ish (sub-linear) as the corpus grows; the
  script fails loudly if 100x more documents cost anywhere near 100x
  per query.
* **index maintenance folded into editing** — the workspace indexer
  rides every IncE pass (word-boundary re-tokenization of the changed
  span only).  The ``burst_overhead`` section replays the
  ``client_burst`` workload from ``bench_edit_throughput`` with and
  without the indexer attached; the overhead must stay ≤ 15%.
* **audit verification vs history depth** — re-verifying a
  hash-chained audit trail is one SHA-256 per link, linear in history
  depth; the curve documents the constant.

Run as a script (``make bench-search``) it writes the
``BENCH_search.json`` sidecar at the repo root, preserving the first
recorded run as ``baseline`` forever (same convention as every other
sidecar; ``tools/bench_trend.py`` aggregates them all).
"""

from __future__ import annotations

import json
import pathlib
import random
import statistics
import sys
import time

from repro.client.coalesce import EditCoalescer
from repro.core import KeyMaterial, create_document
from repro.core.auditchain import AuditChain, verify_entries
from repro.crypto.random import DeterministicRandomSource
from repro.datastructures import IndexedSkipList
from repro.extension.catalog import WorkspaceIndexer
from repro.services.catalog import CatalogStore
from repro.services.gdocs.protocol import content_hash
from repro.workloads.text import make_text

SCHEMA = "repro.bench.search/v1"
SIDECAR = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_search.json"

KEYS = KeyMaterial.from_password("bench", salt=b"benchsalt1")

#: corpus sizes (documents) for the query-latency curve
CORPUS_SIZES = [1_000, 10_000, 100_000]
#: audit chain depths (links) for the verify curve
CHAIN_DEPTHS = [100, 1_000, 10_000]
#: queries averaged per latency cell
QUERIES = 300
#: the acceptance bound: indexing folded into the burst edit path may
#: cost at most this fraction of the plain client_burst keystroke rate
MAX_OVERHEAD = 0.15
#: sub-linearity gate: 100x more documents must cost less than this
#: factor per query (a linear scan would blow straight through it)
MAX_QUERY_GROWTH = 10.0

#: timed repetitions per cell; best-of-k defeats scheduler noise
BENCH_REPS = 3

#: the shared vocabulary documents draw from (plus one unique word per
#: document, which is what the latency queries look up — a bounded
#: result set isolates corpus-size cost from result-size cost)
_VOCAB = [f"word{i}" for i in range(50)]


def _best(measure, reps: int = BENCH_REPS) -> float:
    """Fastest of ``reps`` timed runs (rate-style: higher is better)."""
    return max(measure() for _ in range(reps))


def _build_corpus(n_docs: int) -> tuple[WorkspaceIndexer, CatalogStore]:
    """An indexed corpus of ``n_docs`` documents, each holding a few
    vocabulary words plus one unique word ``uniq<i>``."""
    rng = random.Random(n_docs)
    indexer = WorkspaceIndexer("bench-tenant")
    store = CatalogStore()
    for i in range(n_docs):
        words = rng.sample(_VOCAB, 4)
        text = " ".join(words) + f" uniq{i}"
        store.apply_records(indexer.set_text(f"doc-{i}", text))
    return indexer, store


def _query_usec(n_docs: int) -> float:
    """Mean microseconds per search (lookup + posting decryption)."""
    indexer, store = _build_corpus(n_docs)
    rng = random.Random(n_docs * 7)
    targets = [rng.randrange(n_docs) for _ in range(QUERIES)]
    trapdoors = [indexer.trapdoor(f"uniq{i}") for i in targets]

    def measure() -> float:
        t0 = time.perf_counter()
        hits = 0
        for i, trapdoor in zip(targets, trapdoors):
            for blob in store.lookup(trapdoor):
                if indexer.decrypt_blob(trapdoor, blob) == f"doc-{i}":
                    hits += 1
        elapsed = time.perf_counter() - t0
        assert hits == QUERIES, f"search broken: {hits}/{QUERIES} hits"
        return QUERIES / elapsed          # queries/sec (rate for _best)

    return round(1e6 / _best(measure), 2)  # best rate -> usec/query


def _index_update_eps(size: int = 20_000, edits: int = 400) -> float:
    """Indexer-only maintenance rate: word-boundary re-tokenization of
    keystroke-sized changed spans, in edits/sec."""
    rng = random.Random(size)
    text = make_text(size, rng)
    deltas = _keystroke_deltas(rng, len(text), edits)

    def measure() -> float:
        indexer = WorkspaceIndexer("bench-tenant")
        indexer.adopt("doc", text)
        t0 = time.perf_counter()
        for delta in deltas:
            indexer.apply("doc", delta)
        return edits / (time.perf_counter() - t0)

    return round(_best(measure), 1)


def _audit_verify_ms(depth: int) -> float:
    """Milliseconds to fully re-verify a ``depth``-link audit chain."""
    chain = AuditChain()
    for rev in range(1, depth + 1):
        chain.append(rev, content_hash(f"content at rev {rev}"))
    entries = chain.entries

    def measure() -> float:
        t0 = time.perf_counter()
        problems = verify_entries(entries)
        elapsed = time.perf_counter() - t0
        assert not problems, problems
        return 1.0 / elapsed              # verifies/sec (rate for _best)

    return round(1e3 / _best(measure), 3)  # best rate -> ms/verify


def _keystroke_deltas(rng: random.Random, length: int, count: int):
    """Typing-shaped deltas (runs of single-char inserts, occasional
    backspaces and cursor jumps) — the bench_edit_throughput workload."""
    from repro.core import Delta

    deltas = []
    cursor = rng.randrange(max(1, length))
    for _ in range(count):
        if rng.random() < 0.04:
            cursor = rng.randrange(max(1, length))
        if rng.random() < 0.12 and cursor > 0:
            cursor -= 1
            length -= 1
            deltas.append(Delta.deletion(cursor, 1))
        else:
            deltas.append(Delta.insertion(cursor, rng.choice("abcdefgh ")))
            cursor += 1
            length += 1
    return deltas


def _burst_run(scheme: str, size: int, keystrokes: int, burst: int,
               indexer: WorkspaceIndexer | None) -> float:
    """One timed run of the coalesced IncE path — keystrokes/sec, with
    the workspace indexer riding each flushed burst when given one."""
    rng = random.Random(size * 13 + keystrokes + burst)
    text = make_text(size, rng)
    doc = create_document(text, key_material=KEYS, scheme=scheme,
                          rng=DeterministicRandomSource(9),
                          index_factory=lambda: IndexedSkipList(
                              rng=random.Random(5)))
    if indexer is not None:
        indexer.adopt("doc", text)
    deltas = _keystroke_deltas(rng, doc.char_length, keystrokes)
    journal = EditCoalescer(max_ops=burst)
    t0 = time.perf_counter()

    def flush(ready) -> None:
        if ready is None:
            return
        if indexer is not None:
            indexer.apply("doc", ready)
        doc.apply_delta(ready)

    for delta in deltas:
        flush(journal.add(delta))
    flush(journal.flush("drain"))
    return keystrokes / (time.perf_counter() - t0)


def _burst_overhead(scheme: str, size: int, keystrokes: int,
                    burst: int) -> float:
    """The ``burst_overhead`` cell: fractional keystroke-rate cost of
    attaching the indexer to the ``client_burst`` workload.

    Plain and indexed runs are timed in *interleaved pairs* and the
    cell reports the median pair's ratio — scheduler drift between
    two independent best-of-k loops would otherwise masquerade as
    indexing cost, while a lucky single pair would hide real cost.
    One tenant indexer serves every pair (``adopt`` resets the
    document shadow; the trapdoor/blob caches persist), so the cell
    measures an editing session's steady state rather than
    first-keystroke cache warming.
    """
    indexer = WorkspaceIndexer("bench-tenant")
    overheads = []
    for _ in range(BENCH_REPS + 2):
        plain = _burst_run(scheme, size, keystrokes, burst, None)
        indexed = _burst_run(scheme, size, keystrokes, burst, indexer)
        overheads.append(1.0 - indexed / plain)
    return round(max(0.0, statistics.median(overheads)), 4)


def run_suite(corpus_sizes=None, chain_depths=None,
              burst_keystrokes: int = 256) -> dict:
    """Measure every section; keys are flat human-readable labels."""
    corpus_sizes = corpus_sizes or CORPUS_SIZES
    chain_depths = chain_depths or CHAIN_DEPTHS
    results: dict[str, dict[str, float]] = {
        "query_usec": {}, "index_update": {},
        "audit_verify_ms": {}, "burst_overhead": {},
    }
    for n_docs in corpus_sizes:
        results["query_usec"][f"docs={n_docs}"] = _query_usec(n_docs)
    results["index_update"]["keystroke_spans_eps"] = _index_update_eps()
    for depth in chain_depths:
        results["audit_verify_ms"][f"depth={depth}"] = \
            _audit_verify_ms(depth)
    for scheme in ("recb", "rpc"):
        results["burst_overhead"][f"{scheme}/burst=32/n=20000"] = \
            _burst_overhead(scheme, 20_000, burst_keystrokes, 32)
    return results


def violations(results: dict) -> list[str]:
    """The acceptance gates: query sub-linearity and bounded overhead."""
    found = []
    cells = results["query_usec"]
    labels = sorted(cells, key=lambda s: int(s.split("=")[1]))
    smallest, largest = cells[labels[0]], cells[labels[-1]]
    if largest >= MAX_QUERY_GROWTH * smallest:
        found.append(
            f"query latency super-linear: {labels[-1]} at {largest}us "
            f"vs {labels[0]} at {smallest}us "
            f"(>= {MAX_QUERY_GROWTH}x growth)")
    for label, overhead in results["burst_overhead"].items():
        if overhead > MAX_OVERHEAD:
            found.append(
                f"index maintenance overhead {overhead:.1%} on {label} "
                f"exceeds the {MAX_OVERHEAD:.0%} budget")
    return found


def write_sidecar(results: dict) -> dict:
    """Write BENCH_search.json, preserving the first-ever run as the
    ``baseline`` future runs are compared against."""
    baseline = None
    if SIDECAR.exists():
        previous = json.loads(SIDECAR.read_text())
        baseline = previous.get("baseline") or previous.get("current")
    payload = {
        "schema": SCHEMA,
        "unit": "usec/query, edits/sec, ms/verify, overhead fraction",
        "baseline": baseline,
        "current": results,
    }
    SIDECAR.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


# -- pytest mode (collected with the other bench_* figures) --------------

def _register(results: dict) -> None:
    from conftest import register_table
    from repro.bench import render_table

    rows = []
    for section in ("query_usec", "index_update", "audit_verify_ms",
                    "burst_overhead"):
        for label in sorted(results.get(section, {})):
            rows.append([f"{section}/{label}",
                         str(results[section][label])])
    register_table("search", render_table(
        ["cell", "value"], rows,
        title="Encrypted search - query latency vs corpus, index "
              "maintenance, audit verify vs depth",
    ))


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def search_suite():
    results = run_suite(corpus_sizes=[500, 2_000, 8_000],
                        chain_depths=[50, 500],
                        burst_keystrokes=128)
    _register(results)
    return results


class TestSearchBench:
    def test_query_latency_sublinear(self, search_suite):
        """16x more documents must not cost anywhere near 16x per
        query — the posting map is keyed by trapdoor."""
        cells = search_suite["query_usec"]
        assert cells["docs=8000"] < 10 * cells["docs=500"], cells

    def test_index_overhead_bounded(self, search_suite):
        """The sidecar's longer runs enforce the real 15% budget; here
        a noise-tolerant 30% guards the shape in the shared suite."""
        for label, overhead in search_suite["burst_overhead"].items():
            assert overhead <= 0.30, (label, overhead)

    def test_audit_verify_positive_and_finite(self, search_suite):
        for label, ms in search_suite["audit_verify_ms"].items():
            assert 0 < ms < 10_000, (label, ms)


def _warmup() -> None:
    """Stabilize frequency scaling before the first measured cell."""
    _build_corpus(500)
    _burst_run("recb", 5_000, 64, 32, None)


if __name__ == "__main__":
    _warmup()
    suite = run_suite()
    payload = write_sidecar(suite)
    json.dump(payload, sys.stdout, indent=2)
    print()
    failed = violations(suite)
    if failed:
        print("bench-search: FAILED acceptance gates:", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
