"""Shared benchmark infrastructure.

Each ``bench_*`` module both (a) registers pytest-benchmark timings for
the operations the paper measures and (b) computes the corresponding
paper table/figure, which is printed in the terminal summary and written
to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

import pathlib

_TABLES: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def register_table(name: str, text: str) -> None:
    """Record a rendered paper-style table for the summary and disk."""
    _TABLES.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def _write_metrics_sidecar() -> pathlib.Path:
    """Dump the global metrics registry next to the figure tables."""
    from repro.obs.export import write_sidecar

    _RESULTS_DIR.mkdir(exist_ok=True)
    path = _RESULTS_DIR / "metrics.json"
    write_sidecar(str(path))
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    sidecar = _write_metrics_sidecar()
    terminalreporter.write_sep("=", "paper tables & figures (reproduced)")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(also written to {_RESULTS_DIR}/<figure>.txt; operation-count "
        f"metrics sidecar at {sidecar} — render with `repro stats`)"
    )
