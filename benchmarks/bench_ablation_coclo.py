"""Ablation B — incremental encryption vs whole-document re-encryption.

The paper's efficiency claim against CoClo [12]: re-encrypting and
retransmitting the entire document for every update is what incremental
encryption avoids.  A third arm — the naive fixed-alignment block store
of SV-C — re-encrypts every block after the edit point.

Measured per single-character edit at several document sizes:

* CPU time of the update, and
* bytes that must be transmitted to the server (the cdelta size),

for (1) the incremental IndexedSkipList document, (2) the CoClo-style
whole-document document, (3) the naive realigning store.  Expected
shape: incremental stays flat in both metrics while both baselines grow
linearly; the crossover sits at tiny documents (a few blocks), matching
the paper's "vital for efficiently editing medium to large size
documents".
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import register_table
from repro.bench import render_table
from repro.baselines import CocloDocument, NaiveAlignedDocument
from repro.core import KeyMaterial, create_document
from repro.crypto.random import DeterministicRandomSource
from repro.workloads.documents import document_of_length

SIZES = [100, 1_000, 5_000, 20_000]
EDITS = 12

KEYS = KeyMaterial.from_password("bench", salt=b"benchsaltB")


def _arms(text):
    rng = DeterministicRandomSource(11)
    return {
        "incremental (this paper)": create_document(
            text, key_material=KEYS, scheme="recb", block_chars=8, rng=rng
        ),
        "CoClo (re-encrypt all)": CocloDocument(
            text, key_material=KEYS, block_chars=8, rng=rng
        ),
        "naive realign": NaiveAlignedDocument(
            text, key_material=KEYS, block_chars=8, rng=rng
        ),
    }


def _edit_cost(doc, n, seed):
    """Mean (seconds, cdelta chars) over random 1-char inserts."""
    rng = random.Random(seed)
    total_time = 0.0
    total_bytes = 0
    for _ in range(EDITS):
        pos = rng.randint(0, doc.char_length)
        t0 = time.perf_counter()
        cdelta = doc.insert(pos, "x")
        total_time += time.perf_counter() - t0
        total_bytes += len(cdelta.serialize())
    return total_time / EDITS, total_bytes / EDITS


@pytest.fixture(scope="module")
def ablation():
    results = {}
    for n in SIZES:
        text = document_of_length(n, seed=n)
        for name, doc in _arms(text).items():
            results[(name, n)] = _edit_cost(doc, n, seed=n)
    rows = []
    for name in ("incremental (this paper)", "CoClo (re-encrypt all)",
                 "naive realign"):
        rows.append(
            [name]
            + [f"{results[(name, n)][0] * 1e3:.2f} ms" for n in SIZES]
        )
        rows.append(
            ["  ... bytes sent"]
            + [f"{results[(name, n)][1]:.0f}" for n in SIZES]
        )
    register_table("ablation_coclo", render_table(
        ["arm"] + [f"n={n}" for n in SIZES],
        rows,
        title="Ablation B - cost of one 1-char edit: incremental vs "
              "whole-document baselines (b=8, rECB)",
    ))
    return results


class TestAblationCoclo:
    @pytest.mark.parametrize("arm", ["incremental (this paper)",
                                     "CoClo (re-encrypt all)"])
    def test_edit_cost(self, benchmark, ablation, arm):
        text = document_of_length(5_000, seed=1)
        doc = _arms(text)[arm]
        positions = iter(range(10 ** 9))

        def one_edit():
            doc.insert(next(positions) % doc.char_length, "x")

        benchmark(one_edit)

    def test_shape_incremental_flat(self, ablation):
        small = ablation[("incremental (this paper)", 100)]
        large = ablation[("incremental (this paper)", 20_000)]
        assert large[1] < small[1] * 4          # bytes ~flat
        assert large[0] < max(small[0] * 20, 0.005)  # time stays tiny

    def test_shape_coclo_grows_linearly(self, ablation):
        small = ablation[("CoClo (re-encrypt all)", 100)]
        large = ablation[("CoClo (re-encrypt all)", 20_000)]
        assert large[1] > small[1] * 50   # bytes grow with the document

    def test_shape_incremental_wins_at_scale(self, ablation):
        """Who wins, by roughly what factor: at 20k chars the paper's
        approach must beat CoClo by well over an order of magnitude in
        transmitted bytes."""
        incremental = ablation[("incremental (this paper)", 20_000)]
        coclo = ablation[("CoClo (re-encrypt all)", 20_000)]
        naive = ablation[("naive realign", 20_000)]
        assert coclo[1] / incremental[1] > 20
        assert coclo[0] > incremental[0]
        # naive realign averages half-document re-encryption
        assert naive[0] > incremental[0]

    def test_shape_crossover_is_small(self, ablation):
        """At 100 chars the arms are within one small factor — the
        incremental machinery only pays off beyond toy documents."""
        incremental = ablation[("incremental (this paper)", 100)]
        coclo = ablation[("CoClo (re-encrypt all)", 100)]
        assert coclo[1] < incremental[1] * 30
