# Reproduction of "Private Editing Using Untrusted Cloud Services"
# (Huang & Evans, 2011).  Common entry points:

PYTHON ?= python3

.PHONY: install test metrics-smoke docs-check bench bench-edits bench-faults figures examples all clean

install:
	pip install -e . --no-build-isolation

test: metrics-smoke docs-check
	PYTHONPATH=src $(PYTHON) -m pytest tests/

metrics-smoke:    ## end-to-end check of the repro.obs pipeline + sidecar schema
	PYTHONPATH=src $(PYTHON) benchmarks/metrics_smoke.py

docs-check:       ## verify docs citations (metrics, module paths, files) against source
	$(PYTHON) tools/docs_check.py

bench:            ## timings only (shape assertions skipped)
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-edits:      ## edit-throughput sweep -> BENCH_edit_throughput.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_edit_throughput.py

bench-faults:     ## fault-rate sweep -> BENCH_faults.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py

figures:          ## timings + qualitative shape assertions + tables
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: install test figures examples

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
