# Reproduction of "Private Editing Using Untrusted Cloud Services"
# (Huang & Evans, 2011).  Common entry points:

PYTHON ?= python3

# differential-fuzzer budgets: FUZZ_ITERS bounds the CI run inside
# `make test`; BURST_ITERS drives the burst profile (long keystroke
# runs through the edit-coalescing differential); COLLAB_ITERS drives
# the N-writer (2-16 clients) collaboration profile; WORKSPACE_ITERS
# drives the multi-document workspace profile (encrypted search +
# audit-chain oracles, incl. the rollback-attacking server); fuzz-long
# runs the deep profile at FUZZ_LONG_ITERS.
# COVERAGE_MIN is the line-coverage threshold `make coverage` enforces.
FUZZ_ITERS ?= 2000
BURST_ITERS ?= 400
COLLAB_ITERS ?= 200
WORKSPACE_ITERS ?= 60
FUZZ_LONG_ITERS ?= 20000
COVERAGE_MIN ?= 80

.PHONY: install test metrics-smoke docs-check layering-check fuzz fuzz-long mutation-smoke coverage bench bench-edits bench-faults bench-load bench-load-smoke bench-collab bench-search bench-trend figures examples all clean

install:
	pip install -e . --no-build-isolation

test: metrics-smoke docs-check layering-check fuzz bench-load-smoke
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m "not slow"

layering-check:   ## enforce the client/extension vs services import layering
	$(PYTHON) tools/layering_check.py

fuzz:             ## seeded differential fuzzing (bounded CI budget) + oracle teeth check
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --iters $(FUZZ_ITERS)
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --iters $(BURST_ITERS) --profile burst
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --iters $(COLLAB_ITERS) --profile collab
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --iters $(WORKSPACE_ITERS) --profile workspace
	$(PYTHON) tools/mutation_smoke.py

fuzz-long:        ## the deep profile at full budget, plus the slow-marked tests
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --iters $(FUZZ_LONG_ITERS) --profile deep -v
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m slow

mutation-smoke:   ## prove the fuzz oracle catches an injected RPC-checksum bug
	$(PYTHON) tools/mutation_smoke.py

coverage:         ## line coverage (pytest-cov when installed, else stdlib fallback)
	$(PYTHON) tools/coverage_tool.py --min $(COVERAGE_MIN) --report

metrics-smoke:    ## end-to-end check of the repro.obs pipeline + sidecar schema
	PYTHONPATH=src $(PYTHON) benchmarks/metrics_smoke.py

docs-check:       ## verify docs citations (metrics, module paths, files) against source
	$(PYTHON) tools/docs_check.py

bench:            ## timings only (shape assertions skipped)
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-edits:      ## edit-throughput sweep -> BENCH_edit_throughput.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_edit_throughput.py

bench-faults:     ## fault-rate sweep -> BENCH_faults.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_faults.py

bench-load:       ## 100/1k/10k-session load sweep (socket + in-process) -> BENCH_load.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_load.py

bench-load-smoke: ## 16-session load-generator smoke (both transports, faults on)
	PYTHONPATH=src $(PYTHON) benchmarks/bench_load.py --smoke

bench-collab:     ## 2/8/32/100-writer conflict-rate sweep (merge vs conflict) -> BENCH_collab.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_collab.py

bench-search:     ## encrypted-search scaling (query vs corpus, index overhead, audit verify) -> BENCH_search.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_search.py

bench-trend:      ## aggregate every BENCH_*.json sidecar into one trajectory table
	$(PYTHON) tools/bench_trend.py

figures:          ## timings + qualitative shape assertions + tables
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: install test figures examples

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
