# Reproduction of "Private Editing Using Untrusted Cloud Services"
# (Huang & Evans, 2011).  Common entry points:

PYTHON ?= python3

.PHONY: install test metrics-smoke bench bench-edits figures examples all clean

install:
	pip install -e . --no-build-isolation

test: metrics-smoke
	$(PYTHON) -m pytest tests/

metrics-smoke:    ## end-to-end check of the repro.obs pipeline + sidecar schema
	PYTHONPATH=src $(PYTHON) benchmarks/metrics_smoke.py

bench:            ## timings only (shape assertions skipped)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-edits:      ## edit-throughput sweep -> BENCH_edit_throughput.json
	PYTHONPATH=src $(PYTHON) benchmarks/bench_edit_throughput.py

figures:          ## timings + qualitative shape assertions + tables
	$(PYTHON) -m pytest benchmarks/

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: install test figures examples

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
